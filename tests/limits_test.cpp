// Resource-governor tests (engine/limits.h + the channel degrade layer):
//
//   * every ScanLimits axis, breached in isolation, yields exactly the
//     documented ScanStatus/ScanStage on the ScanOutcome — one-shot and
//     streamed — and never an exception or a hang;
//   * default (unlimited) limits report kComplete and change nothing;
//   * the zero-allocation steady-state invariant survives with every
//     limit armed (governance state lives on the Scratch, not the heap);
//   * the channels translate incomplete scans through their
//     DegradePolicy: fail-open admits, fail-closed blocks, both flag the
//     verdict as degraded, BrowserGate never memoizes a degraded verdict,
//     and CdnFilter reports which placements the policy decided.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/deploy.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "engine/limits.h"

// ------------------------ operator-new hook ------------------------
// Same global replacement as engine_test.cpp: counting is off by default
// and flipped on around the scan under test.
namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kizzle::engine {
namespace {

using core::DeployedSignature;
using std::chrono::steady_clock;

std::vector<DeployedSignature> test_signatures() {
  DeployedSignature lit;
  lit.name = "lit";
  lit.family = "RIG";
  lit.pattern = "documentwriteunescape";
  DeployedSignature tail;
  tail.name = "tail";
  tail.family = "RIG";
  tail.pattern = "evalfromcharcode[0-9]{2,6}end";
  DeployedSignature vm;
  vm.name = "vm";
  vm.family = "none";
  // Unbounded repetition cannot compile to a confirm program, so this is
  // guaranteed to land in ConfirmTier::kRegex — the only tier the VM
  // step budget applies to.
  vm.pattern = "zq[0-9]+zq";
  return {lit, tail, vm};
}

ScanLimits expired_deadline() {
  ScanLimits limits;
  limits.deadline = steady_clock::now() - std::chrono::seconds(1);
  return limits;
}

std::size_t count_events(const Database& db, std::string_view text,
                         Scratch& scratch) {
  std::size_t n = 0;
  scan(db, text, scratch, [&n](const MatchEvent&) {
    ++n;
    return ScanDecision::Continue;
  });
  return n;
}

// ------------------------------ one-shot ------------------------------

TEST(Limits, DefaultLimitsReportComplete) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  const ScanOutcome out =
      scan(db, "xxdocumentwriteunescapexx", scratch,
           [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(out.status, ScanStatus::kComplete);
  EXPECT_EQ(out.limited_stage, ScanStage::kNone);
  EXPECT_EQ(out.truncated_bytes, 0u);
  EXPECT_TRUE(out.complete());
  EXPECT_EQ(out.events, 1u);
}

TEST(Limits, InputCapTruncatesAndStillMatchesThePrefix) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  // The literal sits inside the cap; bytes beyond it must not be scanned.
  const std::string text =
      "xxdocumentwriteunescape" + std::string(100, 'y') + "zq123zq";
  ScanLimits limits;
  limits.max_input_bytes = 32;
  scratch.set_limits(limits);
  std::size_t events = 0;
  const ScanOutcome out = scan(db, text, scratch, [&](const MatchEvent& e) {
    EXPECT_EQ(e.name, "lit");
    ++events;
    return ScanDecision::Continue;
  });
  EXPECT_EQ(out.status, ScanStatus::kTruncated);
  EXPECT_EQ(out.limited_stage, ScanStage::kInput);
  EXPECT_EQ(out.truncated_bytes, text.size() - 32);
  EXPECT_FALSE(out.complete());
  EXPECT_EQ(events, 1u);  // "vm"'s span lies past the cap: never seen
}

TEST(Limits, ExpiredDeadlineShortCircuitsBeforeThePrefilter) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  scratch.set_limits(expired_deadline());
  const ScanOutcome out =
      scan(db, "xxdocumentwriteunescapexx", scratch,
           [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(out.status, ScanStatus::kDeadlineExpired);
  EXPECT_EQ(out.limited_stage, ScanStage::kPrefilter);
  EXPECT_EQ(out.events, 0u);
}

TEST(Limits, GenerousWallBudgetCompletes) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  ScanLimits limits;
  limits.wall_budget = std::chrono::seconds(30);
  scratch.set_limits(limits);
  const ScanOutcome out =
      scan(db, "xxzq123zqxx", scratch,
           [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(out.status, ScanStatus::kComplete);
  EXPECT_EQ(out.events, 1u);
}

TEST(Limits, TinyVmBudgetReportsBudgetExhausted) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  // The fallback pattern "zq[0-9]{3}zq" is VM-confirmed on every scan; a
  // one-step budget cannot finish it.
  ScanLimits limits;
  limits.vm_step_budget = 1;
  scratch.set_limits(limits);
  const ScanOutcome out =
      scan(db, "xxzq123zqxx", scratch,
           [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(out.status, ScanStatus::kBudgetExhausted);
  EXPECT_EQ(out.limited_stage, ScanStage::kConfirm);
  EXPECT_GE(out.budget_exceeded, 1u);
  EXPECT_EQ(out.events, 0u);
}

TEST(Limits, MatchBeatsVmBudgetOnOtherCandidates) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  ScanLimits limits;
  limits.vm_step_budget = 1;
  scratch.set_limits(limits);
  // The pure-literal signature confirms without the VM: its event is
  // delivered even while the VM-tier candidate blows its budget.
  std::vector<std::string> names;
  const ScanOutcome out = scan(db, "documentwriteunescape zq123zq", scratch,
                               [&](const MatchEvent& e) {
                                 names.emplace_back(e.name);
                                 return ScanDecision::Continue;
                               });
  EXPECT_EQ(out.status, ScanStatus::kBudgetExhausted);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "lit");
}

TEST(Limits, LimitsPersistAcrossScansUntilChanged) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  scratch.set_limits(expired_deadline());
  EXPECT_EQ(scan(db, "zq123zq", scratch,
                 [](const MatchEvent&) { return ScanDecision::Continue; })
                .status,
            ScanStatus::kDeadlineExpired);
  scratch.set_limits(ScanLimits{});
  const ScanOutcome out =
      scan(db, "zq123zq", scratch,
           [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(out.status, ScanStatus::kComplete);
  EXPECT_EQ(out.events, 1u);
}

// ------------------------------- streams -------------------------------

TEST(Limits, StreamDeadlineExpiryDropsFeedsAndReportsAtFinish) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  scratch.set_limits(expired_deadline());
  Stream stream = open_stream(db, scratch);
  stream.feed("documentwrite");
  stream.feed("unescape");
  const ScanOutcome out = stream.finish(
      [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(out.status, ScanStatus::kDeadlineExpired);
  EXPECT_EQ(out.limited_stage, ScanStage::kInput);
  EXPECT_EQ(out.events, 0u);
  EXPECT_EQ(out.truncated_bytes, std::string("documentwriteunescape").size());
}

TEST(Limits, StreamInputCapTruncatesAcrossChunks) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  ScanLimits limits;
  limits.max_input_bytes = 24;
  scratch.set_limits(limits);
  Stream stream = open_stream(db, scratch);
  stream.feed("xxdocumentwriteunescape");  // 23 bytes: fits
  stream.feed("yyyyzq123zq");              // 1 byte kept, 10 dropped
  const ScanOutcome out = stream.finish(
      [](const MatchEvent& e) {
        EXPECT_EQ(e.name, "lit");
        return ScanDecision::Continue;
      });
  EXPECT_EQ(out.status, ScanStatus::kTruncated);
  EXPECT_EQ(out.limited_stage, ScanStage::kInput);
  EXPECT_EQ(out.truncated_bytes, 10u);
  EXPECT_EQ(out.events, 1u);
  EXPECT_EQ(scratch.stream_text().size(), 24u);
}

TEST(Limits, StreamWithDefaultLimitsIsUngoverned) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  Stream stream = open_stream(db, scratch);
  stream.feed("documentwrite");
  stream.feed("unescape");
  const ScanOutcome out = stream.finish(
      [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(out.status, ScanStatus::kComplete);
  EXPECT_EQ(out.events, 1u);
}

// ----------------------- zero-alloc steady state -----------------------

TEST(Limits, GovernedScanStaysAllocationFree) {
  const Database db = Database::compile(test_signatures());
  Scratch scratch;
  ScanLimits limits;
  limits.max_input_bytes = 1 << 20;
  limits.vm_step_budget = 10'000;
  limits.wall_budget = std::chrono::seconds(30);
  scratch.set_limits(limits);
  const std::string text = "xx documentwriteunescape zq123zq "
                           "evalfromcharcode1234end yy";
  // Warm-up: buffers grow to their high-water mark.
  (void)count_events(db, text, scratch);
  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  const std::size_t events = count_events(db, text, scratch);
  g_count_allocations.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), 0u)
      << "governed steady-state scan must not allocate";
  EXPECT_EQ(events, 3u);
}

// --------------------------- channel policy ---------------------------

TEST(Limits, BrowserGateFailsOpenAndDoesNotCacheDegradedVerdicts) {
  const core::SignatureBundle bundle(test_signatures());
  core::BrowserGate gate(&bundle);
  gate.set_limits(expired_deadline());
  const std::string script = "documentwriteunescape('%75%6e')";
  const core::Verdict degraded = gate.check_script(script);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_FALSE(degraded.malicious);  // fail-open: admit
  EXPECT_EQ(degraded.scan_status, ScanStatus::kDeadlineExpired);
  // Lifting the limits must yield the true verdict — a cached degraded
  // answer here would mean the policy decision was memoized.
  gate.set_limits(ScanLimits{});
  const core::Verdict real = gate.check_script(script);
  EXPECT_FALSE(real.degraded);
  EXPECT_TRUE(real.malicious);
  EXPECT_EQ(real.signature, "lit");
}

TEST(Limits, BrowserGateFailClosedBlocksOnBreach) {
  const core::SignatureBundle bundle(test_signatures());
  core::BrowserGate gate(&bundle);
  gate.set_limits(expired_deadline());
  gate.set_degrade_policy(core::DegradePolicy::kFailClosed);
  const core::Verdict v = gate.check_script("entirely benign content");
  EXPECT_TRUE(v.degraded);
  EXPECT_TRUE(v.malicious);
  EXPECT_EQ(v.signature_index, core::Verdict::npos);  // no signature: policy
}

TEST(Limits, BrowserGateStreamedScriptDegradesLikeOneShot) {
  const core::SignatureBundle bundle(test_signatures());
  core::BrowserGate gate(&bundle);
  gate.set_limits(expired_deadline());
  auto stream = gate.begin_script();
  stream.feed("documentwrite");
  stream.feed("unescape('x')");
  const core::Verdict v = stream.finish();
  EXPECT_TRUE(v.degraded);
  EXPECT_FALSE(v.malicious);
  EXPECT_EQ(v.scan_status, ScanStatus::kDeadlineExpired);
}

TEST(Limits, DesktopScannerDefaultsFailClosed) {
  const core::SignatureBundle bundle(test_signatures());
  core::DesktopScanner scanner(&bundle);
  scanner.set_limits(expired_deadline());
  const core::Verdict blocked = scanner.scan_file("benign file content");
  EXPECT_TRUE(blocked.degraded);
  EXPECT_TRUE(blocked.malicious);  // fail-closed: quarantine
  scanner.set_degrade_policy(core::DegradePolicy::kFailOpen);
  const core::Verdict admitted = scanner.scan_file("benign file content");
  EXPECT_TRUE(admitted.degraded);
  EXPECT_FALSE(admitted.malicious);
}

TEST(Limits, DesktopFileStreamDegrades) {
  const core::SignatureBundle bundle(test_signatures());
  core::DesktopScanner scanner(&bundle);
  scanner.set_limits(expired_deadline());
  auto stream = scanner.begin_file();
  stream.feed("some file bytes");
  const core::Verdict v = stream.finish();
  EXPECT_TRUE(v.degraded);
  EXPECT_TRUE(v.malicious);
  EXPECT_EQ(v.scan_status, ScanStatus::kDeadlineExpired);
}

TEST(Limits, MatchTrumpsDegradationEverywhere) {
  const core::SignatureBundle bundle(test_signatures());
  core::DesktopScanner scanner(&bundle);
  ScanLimits limits;
  limits.max_input_bytes = 32;  // truncates, but the literal fits in it
  scanner.set_limits(limits);
  const core::Verdict v = scanner.scan_file(
      "documentwriteunescape" + std::string(200, 'x'));
  EXPECT_TRUE(v.malicious);
  EXPECT_FALSE(v.degraded);  // a found match is a real verdict
  EXPECT_EQ(v.signature, "lit");
  EXPECT_EQ(v.scan_status, ScanStatus::kTruncated);
}

TEST(Limits, CdnFilterRecordsDegradedPlacements) {
  const core::SignatureBundle bundle(test_signatures());
  core::CdnFilter filter(&bundle, 2);
  filter.set_limits(expired_deadline());
  const std::vector<std::string> candidates = {"benign one", "benign two",
                                               "benign three"};
  const core::CdnFilter::Report closed = filter.filter(candidates);
  EXPECT_EQ(closed.degraded.size(), candidates.size());
  EXPECT_EQ(closed.rejected.size(), candidates.size());  // fail-closed
  EXPECT_TRUE(closed.hostable.empty());
  EXPECT_TRUE(closed.hits_per_signature.empty());  // no signature fired

  filter.set_degrade_policy(core::DegradePolicy::kFailOpen);
  const core::CdnFilter::Report open = filter.filter(candidates);
  EXPECT_EQ(open.degraded.size(), candidates.size());
  EXPECT_EQ(open.hostable.size(), candidates.size());  // fail-open
  EXPECT_TRUE(open.rejected.empty());
}

TEST(Limits, UnpackLimitsBridgeMapsGovernorKnobs) {
  ScanLimits sl;
  const unpack::UnpackLimits defaults;
  // All-zero governor knobs keep the unpacker's own defaults.
  unpack::UnpackLimits ul = core::unpack_limits_of(sl);
  EXPECT_EQ(ul.max_layers, defaults.max_layers);
  EXPECT_EQ(ul.max_total_bytes, defaults.max_total_bytes);
  sl.max_unpack_layers = 9;
  sl.max_unpack_total_bytes = 1234;
  ul = core::unpack_limits_of(sl);
  EXPECT_EQ(ul.max_layers, 9);
  EXPECT_EQ(ul.max_total_bytes, 1234u);
  // A non-zero expansion ratio caps decoded output at ratio × input when
  // that is the tighter bound...
  sl.max_expansion_ratio = 2.0;
  ul = core::unpack_limits_of(sl, /*input_bytes=*/100);
  EXPECT_EQ(ul.max_total_bytes, 200u);
  // ...and defers to the absolute byte cap when it is looser.
  ul = core::unpack_limits_of(sl, /*input_bytes=*/10'000);
  EXPECT_EQ(ul.max_total_bytes, 1234u);
}

TEST(Limits, CdnFilterUngovernedReportsNothingDegraded) {
  const core::SignatureBundle bundle(test_signatures());
  core::CdnFilter filter(&bundle, 2);
  const std::vector<std::string> candidates = {
      "documentwriteunescape('x')", "clean"};
  const core::CdnFilter::Report report = filter.filter(candidates);
  EXPECT_TRUE(report.degraded.empty());
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_EQ(report.rejected[0], 0u);
  ASSERT_EQ(report.hostable.size(), 1u);
  EXPECT_EQ(report.hostable[0], 1u);
}

}  // namespace
}  // namespace kizzle::engine
