#include <gtest/gtest.h>

#include <numeric>

#include "match/pattern.h"
#include "sig/common_window.h"
#include "sig/compiler.h"
#include "sig/synthesis.h"
#include "support/interner.h"
#include "support/rng.h"
#include "text/lexer.h"

namespace kizzle::sig {
namespace {

using Stream = std::vector<std::uint32_t>;

// ------------------------- find_common_window -------------------------

TEST(CommonWindow, FindsSharedUniqueRun) {
  // shared run 100..104 embedded at different offsets.
  std::vector<Stream> streams = {
      {1, 2, 100, 101, 102, 103, 104, 3},
      {100, 101, 102, 103, 104, 9, 9, 9, 9},
      {7, 7, 7, 100, 101, 102, 103, 104},
  };
  const auto w = find_common_window(streams, 2, 200);
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.length, 5u);
  EXPECT_EQ(w.position[0], 2u);
  EXPECT_EQ(w.position[1], 0u);
  EXPECT_EQ(w.position[2], 3u);
}

TEST(CommonWindow, RespectsUniquenessConstraint) {
  // The run {5,6} is common but appears twice in the second stream; only
  // {5,6,7} (length 3) is unique everywhere.
  std::vector<Stream> streams = {
      {5, 6, 7, 1, 2},
      {5, 6, 9, 5, 6, 7},
  };
  const auto w = find_common_window(streams, 2, 200);
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.length, 3u);
  // Verify the windows really are {5,6,7}.
  for (std::size_t s = 0; s < streams.size(); ++s) {
    EXPECT_EQ(streams[s][w.position[s]], 5u);
    EXPECT_EQ(streams[s][w.position[s] + 2], 7u);
  }
}

TEST(CommonWindow, NoCommonRun) {
  std::vector<Stream> streams = {
      {1, 2, 3, 4, 5},
      {6, 7, 8, 9, 10},
  };
  EXPECT_FALSE(find_common_window(streams, 2, 200).found);
}

TEST(CommonWindow, CapRespected) {
  Stream shared(300);
  std::iota(shared.begin(), shared.end(), 100);
  std::vector<Stream> streams = {shared, shared};
  const auto w = find_common_window(streams, 10, 200);
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.length, 200u);
}

TEST(CommonWindow, MinLengthEnforced) {
  std::vector<Stream> streams = {
      {1, 2, 9},
      {8, 1, 2},
  };
  EXPECT_FALSE(find_common_window(streams, 3, 200).found);
  EXPECT_TRUE(find_common_window(streams, 2, 200).found);
}

TEST(CommonWindow, SingleStream) {
  std::vector<Stream> streams = {{1, 2, 3, 4, 1, 2}};
  const auto w = find_common_window(streams, 2, 200);
  ASSERT_TRUE(w.found);
  // {1,2} occurs twice -> not unique; the longest unique window is the
  // whole stream.
  EXPECT_EQ(w.length, 6u);
}

TEST(CommonWindow, EmptyInputs) {
  EXPECT_FALSE(find_common_window({}, 2, 200).found);
  std::vector<Stream> with_short = {{1}, {1, 2, 3}};
  EXPECT_FALSE(find_common_window(with_short, 2, 200).found);
}

// --------------------------- synthesize_class ---------------------------

std::vector<std::string> V(std::initializer_list<const char*> v) {
  return {v.begin(), v.end()};
}

TEST(Synthesis, PicksMostSpecificTemplate) {
  EXPECT_EQ(synthesize_class(V({"123", "4567"})), "[0-9]{3,4}");
  EXPECT_EQ(synthesize_class(V({"abc", "de"})), "[a-z]{2,3}");
  EXPECT_EQ(synthesize_class(V({"AB", "CD"})), "[A-Z]{2}");
  EXPECT_EQ(synthesize_class(V({"aB", "cD"})), "[a-zA-Z]{2}");
  EXPECT_EQ(synthesize_class(V({"a1", "b2"})), "[0-9a-z]{2}");
  EXPECT_EQ(synthesize_class(V({"Euur1V", "jkb0hA", "QB0Xk"})),
            "[0-9a-zA-Z]{5,6}");
}

TEST(Synthesis, FallsBackToDot) {
  EXPECT_EQ(synthesize_class(V({"ev#333399al", "ev#ccff00al"})), ".{11}");
}

TEST(Synthesis, FixedLengthUsesSingleBound) {
  EXPECT_EQ(synthesize_class(V({"abc", "xyz"})), "[a-z]{3}");
}

TEST(Synthesis, EmptyValueAllowed) {
  EXPECT_EQ(synthesize_class(V({"", "ab"})), "[a-z]{0,2}");
}

TEST(Synthesis, AllEmptyYieldsNothing) {
  EXPECT_EQ(synthesize_class(V({"", ""})), "");
}

TEST(Synthesis, NoValuesThrows) {
  std::vector<std::string> none;
  EXPECT_THROW(synthesize_class(none), std::invalid_argument);
}

TEST(Synthesis, SynthesizedClassActuallyMatches) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> values;
    for (int i = 0; i < 4; ++i) {
      values.push_back(rng.identifier(3, 9));
    }
    const std::string cls = synthesize_class(values);
    const auto p = match::Pattern::compile("^" + cls + "$");
    for (const auto& v : values) {
      EXPECT_TRUE(p.found_in(v)) << cls << " vs " << v;
    }
  }
}

// -------------------------- compile_signature --------------------------

TEST(Compiler, Fig9Example) {
  // The exact example of paper Fig 9: three samples, randomized
  // identifiers and delimiter colors.
  const std::vector<std::string> sources = {
      R"(Euur1V = this["l9D"]("ev#333399al");)",
      R"(jkb0hA = this["uqA"]("ev#ccff00al");)",
      R"(QB0Xk = this["k3LSC"]("ev#33cc00al");)",
  };
  CompilerParams params;
  params.min_tokens = 3;
  const Signature sig = compile_signature_from_sources(sources, params);
  ASSERT_TRUE(sig.ok) << sig.failure;
  // The paper's signature for this cluster:
  //   [A-Za-z0-9]{5,6}=this\[[A-Za-z0-9]{3,5}\]\(.{11}\);
  // Ours uses named groups around the classes; structure must match.
  EXPECT_NE(sig.pattern.find("[0-9a-zA-Z]{5,6}"), std::string::npos)
      << sig.pattern;
  EXPECT_NE(sig.pattern.find("=this\\["), std::string::npos) << sig.pattern;
  EXPECT_NE(sig.pattern.find(".{11}"), std::string::npos) << sig.pattern;
  // And it must match each sample's normalized text.
  const auto p = match::Pattern::compile(sig.pattern);
  EXPECT_TRUE(p.found_in("Euur1V=this[l9D](ev#333399al);"));
  EXPECT_TRUE(p.found_in("QB0Xk=this[k3LSC](ev#33cc00al);"));
}

TEST(Compiler, BackreferenceForRepeatedVariables) {
  // A variable used twice per sample must become one group plus one
  // backreference (the paper's var1/var2 pattern, Fig 10a).
  const std::vector<std::string> sources = {
      R"(var aZk3=1; foo(aZk3); bar("x");)",
      R"(var Qm9p=1; foo(Qm9p); bar("y");)",
  };
  CompilerParams params;
  params.min_tokens = 3;
  const Signature sig = compile_signature_from_sources(sources, params);
  ASSERT_TRUE(sig.ok) << sig.failure;
  EXPECT_NE(sig.pattern.find("(?<var0>"), std::string::npos) << sig.pattern;
  EXPECT_NE(sig.pattern.find("\\k<var0>"), std::string::npos) << sig.pattern;
  const auto p = match::Pattern::compile(sig.pattern);
  EXPECT_TRUE(p.found_in("varhh1w=1;foo(hh1w);bar(z);"));
  // Backreference must bind: different identifiers cannot match.
  EXPECT_FALSE(p.found_in("varaaaa=1;foo(bbbb);bar(z);"));
}

TEST(Compiler, SignatureMatchesAllItsSamples) {
  // Soundness on randomized packer-like corpora (property test).
  Rng rng(5150);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> sources;
    for (int s = 0; s < 5; ++s) {
      const std::string ident = rng.identifier(3, 8);
      const std::string key = rng.string_over("0123456789abcdef", 12);
      sources.push_back("var " + ident + "=\"" + key +
                        "\";function go(){return " + ident +
                        ".length}go();");
    }
    const Signature sig = compile_signature_from_sources(sources, {});
    ASSERT_TRUE(sig.ok) << sig.failure;
    const auto p = match::Pattern::compile(sig.pattern);
    for (const auto& src : sources) {
      const auto tokens = text::lex(src);
      EXPECT_TRUE(p.found_in(normalized_token_text(tokens)));
    }
  }
}

TEST(Compiler, RejectsTooShortWindow) {
  const std::vector<std::string> sources = {"a+b;", "a+b;"};
  CompilerParams params;
  params.min_tokens = 10;
  const Signature sig = compile_signature_from_sources(sources, params);
  EXPECT_FALSE(sig.ok);
  EXPECT_FALSE(sig.failure.empty());
}

TEST(Compiler, RejectsDisjointSamples) {
  const std::vector<std::string> sources = {
      "var a=1;var b=2;var c=3;var d=4;var e=5;",
      "foo();bar();baz();qux();quux();corge();",
  };
  CompilerParams params;
  params.min_tokens = 8;
  const Signature sig = compile_signature_from_sources(sources, params);
  EXPECT_FALSE(sig.ok);
}

TEST(Compiler, WindowCapAt200Tokens) {
  // A unique header followed by a long repetitive region (the RIG shape:
  // hundreds of identical collector calls). The window anchors at the
  // header — repetition alone is never unique — and is capped at 200
  // tokens even though far longer common runs exist.
  std::string body = "var seed=1;function go(x){return x+seed}";
  for (int i = 0; i < 300; ++i) {
    body += "go(\"chunk\");";
  }
  const std::vector<std::string> sources = {body, body};
  const Signature sig = compile_signature_from_sources(sources, {});
  ASSERT_TRUE(sig.ok) << sig.failure;
  EXPECT_LE(sig.token_length, 200u);
  EXPECT_GT(sig.token_length, 100u);
}

TEST(Compiler, SingleSampleYieldsLiteralSignature) {
  const std::vector<std::string> sources = {
      "var alpha=1;function beta(){return alpha+2}beta();"};
  CompilerParams params;
  params.min_tokens = 5;
  const Signature sig = compile_signature_from_sources(sources, params);
  ASSERT_TRUE(sig.ok) << sig.failure;
  for (const Column& col : sig.columns) {
    EXPECT_TRUE(col.is_literal);
  }
}

TEST(Compiler, EmptyInputFails) {
  const Signature sig = compile_signature({}, {});
  EXPECT_FALSE(sig.ok);
}

TEST(Compiler, QuotesStrippedInSignature) {
  // Fig 9: "although the original string contains quotation marks, these
  // are automatically removed by AV scanners in a normalization step".
  const std::vector<std::string> sources = {
      R"(call("samestring");x=1;y=2;z=3;)",
      R"(call("samestring");x=1;y=2;z=3;)",
  };
  CompilerParams params;
  params.min_tokens = 5;
  const Signature sig = compile_signature_from_sources(sources, params);
  ASSERT_TRUE(sig.ok) << sig.failure;
  EXPECT_EQ(sig.pattern.find('"'), std::string::npos) << sig.pattern;
  EXPECT_NE(sig.pattern.find("samestring"), std::string::npos);
}

// Property sweep over cluster sizes: compiled signatures stay sound.
class CompilerSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompilerSweep, SoundOnRandomizedClusters) {
  const int n_samples = GetParam();
  Rng rng(static_cast<std::uint64_t>(n_samples) * 977 + 1);
  std::vector<std::string> sources;
  for (int s = 0; s < n_samples; ++s) {
    std::string src;
    src += "var " + rng.identifier(4, 9) + "=\"\";";
    src += "var " + rng.identifier(3, 6) + "=\"" +
           rng.string_over("0123456789", 20) + "\";";
    src += "function " + rng.identifier(5, 8) + "(t){return t}";
    src += "document.body.appendChild(el);";
    sources.push_back(src);
  }
  const Signature sig = compile_signature_from_sources(sources, {});
  ASSERT_TRUE(sig.ok) << sig.failure;
  const auto p = match::Pattern::compile(sig.pattern);
  for (const auto& src : sources) {
    EXPECT_TRUE(p.found_in(normalized_token_text(text::lex(src))));
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, CompilerSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 24));

}  // namespace
}  // namespace kizzle::sig
