#include <gtest/gtest.h>

#include "core/deploy.h"
#include "kitgen/families.h"
#include "kitgen/kit.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::core {
namespace {

// A bundle with one real signature, compiled from a small RIG cluster.
class DeployFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    kitgen::PayloadSpec spec;
    spec.family = kitgen::KitFamily::Rig;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
    spec.av_check = true;
    spec.urls = {"http://a.gate-1.biz/x"};
    payload_ = payload_text(spec);
    std::vector<std::string> sources;
    for (int i = 0; i < 5; ++i) {
      sources.push_back(pack_rig(payload_, kitgen::RigPackerState{}, rng));
      packed_.push_back(sources.back());
    }
    sig::CompilerParams params;
    params.length_slack = 0.2;
    const sig::Signature sig =
        sig::compile_signature_from_sources(sources, params);
    ASSERT_TRUE(sig.ok) << sig.failure;
    DeployedSignature dep;
    dep.name = "KZ.RIG.1";
    dep.family = "RIG";
    dep.pattern = sig.pattern;
    bundle_ = std::make_unique<SignatureBundle>(
        std::vector<DeployedSignature>{dep});
  }

  std::string fresh_packed() {
    Rng rng(991);
    return pack_rig(payload_, kitgen::RigPackerState{}, rng);
  }

  std::string payload_;
  std::vector<std::string> packed_;
  std::unique_ptr<SignatureBundle> bundle_;
};

TEST_F(DeployFixture, BundleMatchesItsSamples) {
  EXPECT_TRUE(bundle_->match(text::normalize_raw(packed_[0])).has_value());
  EXPECT_FALSE(bundle_->match("nothing to see").has_value());
  EXPECT_THROW(bundle_->info(5), std::out_of_range);
}

TEST_F(DeployFixture, BrowserGateBlocksAndCaches) {
  BrowserGate gate(bundle_.get(), 8);
  const std::string script = fresh_packed();

  const Verdict first = gate.check_script(script);
  EXPECT_TRUE(first.malicious);
  EXPECT_EQ(first.signature, "KZ.RIG.1");
  EXPECT_EQ(gate.cache_misses(), 1u);
  EXPECT_EQ(gate.cache_hits(), 0u);

  // The same script again: memoized.
  const Verdict second = gate.check_script(script);
  EXPECT_TRUE(second.malicious);
  EXPECT_EQ(gate.cache_hits(), 1u);
  EXPECT_EQ(gate.cache_misses(), 1u);

  const Verdict benign = gate.check_script("function ok(){return 1}");
  EXPECT_FALSE(benign.malicious);
}

TEST_F(DeployFixture, BrowserGateEvictsLru) {
  BrowserGate gate(bundle_.get(), 2);
  gate.check_script("var a=1;");
  gate.check_script("var b=2;");
  gate.check_script("var c=3;");  // evicts "var a=1;"
  gate.check_script("var a=1;");  // must re-scan
  EXPECT_EQ(gate.cache_misses(), 4u);
  EXPECT_EQ(gate.cache_hits(), 0u);
}

TEST_F(DeployFixture, BrowserGateNullBundleThrows) {
  EXPECT_THROW(BrowserGate(nullptr), std::invalid_argument);
}

TEST_F(DeployFixture, DesktopScannerScansWholeFiles) {
  DesktopScanner scanner(bundle_.get());
  Rng rng(3);
  // A cached HTML document containing the packed kit.
  const std::string cached_page =
      kitgen::wrap_html("", fresh_packed(), rng);
  EXPECT_TRUE(scanner.scan_file(cached_page).malicious);
  // A bare .js file with the packed content (no HTML wrapper).
  EXPECT_TRUE(scanner.scan_file(fresh_packed()).malicious);
  EXPECT_FALSE(scanner.scan_file("body { color: red }").malicious);
}

TEST_F(DeployFixture, CdnFilterPartitionsCandidates) {
  CdnFilter filter(bundle_.get());
  std::vector<std::string> candidates = {
      "function lib(){return 42}",
      fresh_packed(),
      "var widget = { init: function(){} };",
  };
  const CdnFilter::Report report = filter.filter(candidates);
  ASSERT_EQ(report.hostable.size(), 2u);
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_EQ(report.rejected[0], 1u);
  EXPECT_EQ(report.hits_per_signature.at("KZ.RIG.1"), 1u);
}

TEST_F(DeployFixture, CdnFilterEmptyInput) {
  CdnFilter filter(bundle_.get());
  const auto report = filter.filter({});
  EXPECT_TRUE(report.hostable.empty());
  EXPECT_TRUE(report.rejected.empty());
}

}  // namespace
}  // namespace kizzle::core
