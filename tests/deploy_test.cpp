#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "core/deploy.h"
#include "match/pattern.h"
#include "kitgen/families.h"
#include "kitgen/kit.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::core {
namespace {

// A bundle with one real signature, compiled from a small RIG cluster.
class DeployFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    kitgen::PayloadSpec spec;
    spec.family = kitgen::KitFamily::Rig;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
    spec.av_check = true;
    spec.urls = {"http://a.gate-1.biz/x"};
    payload_ = payload_text(spec);
    std::vector<std::string> sources;
    for (int i = 0; i < 5; ++i) {
      sources.push_back(pack_rig(payload_, kitgen::RigPackerState{}, rng));
      packed_.push_back(sources.back());
    }
    sig::CompilerParams params;
    params.length_slack = 0.2;
    const sig::Signature sig =
        sig::compile_signature_from_sources(sources, params);
    ASSERT_TRUE(sig.ok) << sig.failure;
    DeployedSignature dep;
    dep.name = "KZ.RIG.1";
    dep.family = "RIG";
    dep.pattern = sig.pattern;
    bundle_ = std::make_unique<SignatureBundle>(
        std::vector<DeployedSignature>{dep});
  }

  std::string fresh_packed() {
    Rng rng(991);
    return pack_rig(payload_, kitgen::RigPackerState{}, rng);
  }

  std::string payload_;
  std::vector<std::string> packed_;
  std::unique_ptr<SignatureBundle> bundle_;
};

TEST_F(DeployFixture, BundleMatchesItsSamples) {
  EXPECT_TRUE(bundle_->match(text::normalize_raw(packed_[0])).has_value());
  EXPECT_FALSE(bundle_->match("nothing to see").has_value());
  EXPECT_THROW(bundle_->info(5), std::out_of_range);
}

TEST_F(DeployFixture, BrowserGateBlocksAndCaches) {
  BrowserGate gate(bundle_.get(), 8);
  const std::string script = fresh_packed();

  const Verdict first = gate.check_script(script);
  EXPECT_TRUE(first.malicious);
  EXPECT_EQ(first.signature, "KZ.RIG.1");
  EXPECT_EQ(gate.cache_misses(), 1u);
  EXPECT_EQ(gate.cache_hits(), 0u);

  // The same script again: memoized.
  const Verdict second = gate.check_script(script);
  EXPECT_TRUE(second.malicious);
  EXPECT_EQ(gate.cache_hits(), 1u);
  EXPECT_EQ(gate.cache_misses(), 1u);

  const Verdict benign = gate.check_script("function ok(){return 1}");
  EXPECT_FALSE(benign.malicious);
}

TEST_F(DeployFixture, BrowserGateEvictsLru) {
  BrowserGate gate(bundle_.get(), 2);
  gate.check_script("var a=1;");
  gate.check_script("var b=2;");
  gate.check_script("var c=3;");  // evicts "var a=1;"
  gate.check_script("var a=1;");  // must re-scan
  EXPECT_EQ(gate.cache_misses(), 4u);
  EXPECT_EQ(gate.cache_hits(), 0u);
}

TEST_F(DeployFixture, BrowserGateNullBundleThrows) {
  EXPECT_THROW(BrowserGate(nullptr), std::invalid_argument);
}

TEST_F(DeployFixture, DesktopScannerScansWholeFiles) {
  DesktopScanner scanner(bundle_.get());
  Rng rng(3);
  // A cached HTML document containing the packed kit.
  const std::string cached_page =
      kitgen::wrap_html("", fresh_packed(), rng);
  EXPECT_TRUE(scanner.scan_file(cached_page).malicious);
  // A bare .js file with the packed content (no HTML wrapper).
  EXPECT_TRUE(scanner.scan_file(fresh_packed()).malicious);
  EXPECT_FALSE(scanner.scan_file("body { color: red }").malicious);
}

TEST_F(DeployFixture, CdnFilterPartitionsCandidates) {
  CdnFilter filter(bundle_.get());
  std::vector<std::string> candidates = {
      "function lib(){return 42}",
      fresh_packed(),
      "var widget = { init: function(){} };",
  };
  const CdnFilter::Report report = filter.filter(candidates);
  ASSERT_EQ(report.hostable.size(), 2u);
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_EQ(report.rejected[0], 1u);
  // The per-signature counts are a sorted (name, count) list: stable
  // output for the administrator across runs, platforms and scheduling.
  ASSERT_EQ(report.hits_per_signature.size(), 1u);
  EXPECT_EQ(report.hits_per_signature[0].first, "KZ.RIG.1");
  EXPECT_EQ(report.hits_per_signature[0].second, 1u);
  EXPECT_TRUE(std::is_sorted(report.hits_per_signature.begin(),
                             report.hits_per_signature.end()));
}

TEST_F(DeployFixture, VerdictCarriesSignatureIndexAndSpan) {
  // The engine's MatchEvent flows through to the Verdict: channel callers
  // get the matching signature's bundle index and the match span in the
  // normalized scan text without re-deriving them by name lookup.
  DesktopScanner scanner(bundle_.get());
  const std::string content = fresh_packed();
  const Verdict v = scanner.scan_file(content);
  ASSERT_TRUE(v.malicious);
  EXPECT_EQ(v.signature_index, 0u);
  EXPECT_EQ(bundle_->info(v.signature_index).name, v.signature);
  const std::string normalized = text::normalize_raw(content);
  EXPECT_LT(v.match_begin, v.match_end);
  EXPECT_LE(v.match_end, normalized.size());
  // The span really is where the pattern matched.
  const auto direct =
      match::Pattern::compile(bundle_->info(0).pattern).search(normalized);
  ASSERT_TRUE(direct.matched);
  EXPECT_EQ(v.match_begin, direct.begin);
  EXPECT_EQ(v.match_end, direct.end);

  const Verdict clean = scanner.scan_file("body { color: red }");
  EXPECT_FALSE(clean.malicious);
  EXPECT_EQ(clean.signature_index, Verdict::npos);

  // The streamed channels carry the same fields: a chunked admission and
  // the one-shot check agree on index and span.
  BrowserGate oneshot(bundle_.get(), 8);
  const Verdict checked = oneshot.check_script(content);
  BrowserGate gate(bundle_.get(), 8);
  auto stream = gate.begin_script();
  stream.feed(content);
  const Verdict streamed = stream.finish();
  ASSERT_TRUE(streamed.malicious);
  ASSERT_TRUE(checked.malicious);
  EXPECT_EQ(streamed.signature_index, checked.signature_index);
  EXPECT_EQ(streamed.match_begin, checked.match_begin);
  EXPECT_EQ(streamed.match_end, checked.match_end);
}

TEST_F(DeployFixture, CdnFilterEmptyInput) {
  CdnFilter filter(bundle_.get());
  const auto report = filter.filter({});
  EXPECT_TRUE(report.hostable.empty());
  EXPECT_TRUE(report.rejected.empty());
}

// --------------------- cache collision regression ---------------------

// Every script hashes to the same primary key: without the length/second-
// fingerprint guard, the second script would silently get the first
// script's cached verdict (cache poisoning by hash collision).
std::uint64_t colliding_hash(std::string_view) { return 0x1234; }

TEST_F(DeployFixture, HashCollisionDoesNotPoisonTheVerdictCache) {
  BrowserGate gate(bundle_.get(), 8, &colliding_hash);
  const std::string malicious = fresh_packed();
  const std::string benign = "function ok(){return 1}";

  EXPECT_TRUE(gate.check_script(malicious).malicious);
  // Forced collision: same primary key, different content. Must re-scan,
  // not return the cached malicious verdict.
  EXPECT_FALSE(gate.check_script(benign).malicious);
  EXPECT_EQ(gate.cache_collisions(), 1u);
  EXPECT_EQ(gate.cache_hits(), 0u);
  EXPECT_EQ(gate.cache_misses(), 2u);

  // The collision evicted the malicious entry (latest scan owns the
  // slot): benign now hits, malicious collides again and re-scans — and
  // still gets the right verdict.
  EXPECT_FALSE(gate.check_script(benign).malicious);
  EXPECT_EQ(gate.cache_hits(), 1u);
  EXPECT_TRUE(gate.check_script(malicious).malicious);
  EXPECT_EQ(gate.cache_collisions(), 2u);
}

TEST_F(DeployFixture, CollisionGuardAlsoProtectsStreamedScripts) {
  BrowserGate gate(bundle_.get(), 8, &colliding_hash);
  const std::string malicious = fresh_packed();
  EXPECT_TRUE(gate.check_script(malicious).malicious);
  auto stream = gate.begin_script();
  stream.feed("function ");
  stream.feed("ok(){return 1}");
  EXPECT_FALSE(stream.finish().malicious);
  EXPECT_EQ(gate.cache_collisions(), 1u);
}

// ------------------------- chunked admission -------------------------

TEST_F(DeployFixture, StreamedScriptVerdictEqualsOneShotForAllChunkings) {
  const std::vector<std::string> scripts = {
      fresh_packed(), "function ok(){return 1}", "", "var a='fromCharCode';"};
  for (const std::string& script : scripts) {
    BrowserGate oneshot(bundle_.get(), 8);
    const Verdict expect = oneshot.check_script(script);
    for (const std::size_t chunk :
         std::vector<std::size_t>{1, 7, 4096,
                                  std::max<std::size_t>(script.size(), 1)}) {
      BrowserGate gate(bundle_.get(), 8);
      auto stream = gate.begin_script();
      for (std::size_t at = 0; at < script.size(); at += chunk) {
        stream.feed(std::string_view(script).substr(at, chunk));
      }
      const Verdict got = stream.finish();
      EXPECT_EQ(got.malicious, expect.malicious) << "chunk " << chunk;
      EXPECT_EQ(got.signature, expect.signature) << "chunk " << chunk;
    }
  }
}

TEST_F(DeployFixture, StreamedScriptWithCommentsMatchesOneShotNormalization) {
  // Comments make token-level normalization diverge from the raw-
  // normalized bytes the matcher streamed over; finish() must detect the
  // divergence and fall back to the one-shot scan text check_script uses.
  const std::string script =
      "// harmless comment\n" + fresh_packed() + "\n// trailing\n";
  BrowserGate oneshot(bundle_.get(), 8);
  const Verdict expect = oneshot.check_script(script);
  BrowserGate gate(bundle_.get(), 8);
  auto stream = gate.begin_script();
  for (std::size_t at = 0; at < script.size(); at += 13) {
    stream.feed(std::string_view(script).substr(at, 13));
  }
  const Verdict got = stream.finish();
  EXPECT_EQ(got.malicious, expect.malicious);
  EXPECT_EQ(got.signature, expect.signature);
}

TEST_F(DeployFixture, StreamedAndOneShotScriptsShareTheCache) {
  BrowserGate gate(bundle_.get(), 8);
  const std::string script = fresh_packed();
  auto stream = gate.begin_script();
  stream.feed(script);
  EXPECT_TRUE(stream.finish().malicious);
  EXPECT_EQ(gate.cache_misses(), 1u);
  // Same content through the one-shot path: memoized.
  EXPECT_TRUE(gate.check_script(script).malicious);
  EXPECT_EQ(gate.cache_hits(), 1u);
  EXPECT_EQ(gate.cache_misses(), 1u);
  // finish() twice on one stream is a usage error.
  auto once = gate.begin_script();
  once.feed(script);
  once.finish();
  EXPECT_THROW(once.finish(), std::logic_error);
}

TEST_F(DeployFixture, DesktopScannerStreamEqualsScanFile) {
  DesktopScanner scanner(bundle_.get());
  Rng rng(3);
  const std::vector<std::string> files = {
      kitgen::wrap_html("", fresh_packed(), rng), fresh_packed(),
      "body { color: red }", ""};
  for (const std::string& content : files) {
    const Verdict expect = scanner.scan_file(content);
    for (const std::size_t chunk : std::vector<std::size_t>{1, 7, 4096}) {
      std::istringstream in(content);
      const Verdict got = scanner.scan_stream(in, chunk);
      EXPECT_EQ(got.malicious, expect.malicious) << "chunk " << chunk;
      EXPECT_EQ(got.signature, expect.signature) << "chunk " << chunk;
    }
    auto stream = scanner.begin_file();
    for (std::size_t at = 0; at < content.size(); at += 11) {
      stream.feed(std::string_view(content).substr(at, 11));
    }
    EXPECT_EQ(stream.finish().malicious, expect.malicious);
  }
}

// ------------------------- concurrent admission -------------------------

// Exercised under ThreadSanitizer in CI (-DKIZZLE_SANITIZE=thread): the
// LRU list, map and counters are shared mutable state behind the gate's
// mutex; check_script and streamed finishes race on them from all sides.
TEST_F(DeployFixture, BrowserGateIsSafeUnderConcurrentAdmission) {
  BrowserGate gate(bundle_.get(), 4);  // small: forces constant eviction
  const std::vector<std::string> malicious = {fresh_packed()};
  const std::vector<std::string> benign = {
      "function ok(){return 1}", "var a=1;", "var b=2;", "var c=3;",
      "var d=4;"};
  constexpr int kIters = 120;
  constexpr int kThreads = 8;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const bool want_malicious = (i + t) % 3 == 0;
        const std::string& script =
            want_malicious ? malicious[0]
                           : benign[static_cast<std::size_t>(i + t) %
                                    benign.size()];
        Verdict v;
        if (i % 2 == 0) {
          v = gate.check_script(script);
        } else {
          auto stream = gate.begin_script();
          for (std::size_t at = 0; at < script.size(); at += 97) {
            stream.feed(std::string_view(script).substr(at, 97));
          }
          v = stream.finish();
        }
        if (v.malicious != want_malicious) wrong.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  // Every admission is accounted exactly once, as a hit or a miss.
  EXPECT_EQ(gate.cache_hits() + gate.cache_misses(),
            static_cast<std::uint64_t>(kIters) * kThreads);
}

}  // namespace
}  // namespace kizzle::core
