#include <gtest/gtest.h>

#include "support/hash.h"
#include "support/rng.h"
#include "winnow/winnow.h"

namespace kizzle::winnow {
namespace {

TEST(Winnow, EmptyInput) {
  const std::vector<std::uint64_t> none;
  EXPECT_TRUE(winnow_hashes(none, 4).empty());
}

TEST(Winnow, ShortInputSelectsGlobalMinimum) {
  const std::vector<std::uint64_t> hashes = {9, 3, 7};
  const auto sel = winnow_hashes(hashes, 4);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].hash, 3u);
  EXPECT_EQ(sel[0].position, 1u);
}

TEST(Winnow, GuaranteeEveryWindowHasASelection) {
  // The winnowing guarantee: each window of `w` consecutive k-grams
  // contains at least one selected position.
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> hashes(30 + rng.index(200));
    for (auto& h : hashes) h = rng.next();
    const std::size_t w = 2 + rng.index(6);
    const auto sel = winnow_hashes(hashes, w);
    std::vector<bool> selected(hashes.size(), false);
    for (const Selected& s : sel) selected[s.position] = true;
    for (std::size_t start = 0; start + w <= hashes.size(); ++start) {
      bool any = false;
      for (std::size_t i = start; i < start + w; ++i) {
        if (selected[i]) any = true;
      }
      EXPECT_TRUE(any) << "window at " << start << " w=" << w;
    }
  }
}

TEST(Winnow, RejectsZeroWindow) {
  const std::vector<std::uint64_t> hashes = {1, 2, 3};
  EXPECT_THROW(winnow_hashes(hashes, 0), std::invalid_argument);
}

TEST(FingerprintSet, IdenticalTextsFullyContained) {
  const Params p{.k = 8, .window = 4};
  const std::string text = "function detect(){return navigator.plugins}";
  const auto a = FingerprintSet::of_text(text, p);
  const auto b = FingerprintSet::of_text(text, p);
  EXPECT_DOUBLE_EQ(a.containment(b), 1.0);
  EXPECT_DOUBLE_EQ(a.jaccard(b), 1.0);
}

TEST(FingerprintSet, DisjointTextsNoOverlap) {
  const Params p{.k = 8, .window = 4};
  const auto a = FingerprintSet::of_text(
      "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", p);
  const auto b = FingerprintSet::of_text(
      "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", p);
  EXPECT_DOUBLE_EQ(a.containment(b), 0.0);
}

TEST(FingerprintSet, SharedCoreYieldsProportionalContainment) {
  // benign = shared core + extra tail; containment(benign -> core) should
  // scale with the shared fraction. This is the Fig 15 mechanism.
  Rng rng(67);
  const std::string core = rng.string_over("abcdefgh({;=.", 2000);
  const std::string tail = rng.string_over("nopqrstu)}[]!", 600);
  const Params p{.k = 8, .window = 4};
  const auto core_fps = FingerprintSet::of_text(core, p);
  const auto benign_fps = FingerprintSet::of_text(core + tail, p);
  const double c = benign_fps.containment(core_fps);
  EXPECT_GT(c, 0.6);
  EXPECT_LT(c, 0.95);
}

TEST(FingerprintSet, ContainmentIsAsymmetric) {
  Rng rng(68);
  const std::string core = rng.string_over("abcdefgh", 1000);
  const std::string big = core + rng.string_over("xyzw", 3000);
  const Params p{.k = 8, .window = 4};
  const auto small_fps = FingerprintSet::of_text(core, p);
  const auto big_fps = FingerprintSet::of_text(big, p);
  EXPECT_GT(small_fps.containment(big_fps), big_fps.containment(small_fps));
}

TEST(FingerprintSet, EmptyBehaviour) {
  const Params p{.k = 8, .window = 4};
  const FingerprintSet empty;
  const auto full = FingerprintSet::of_text("abcdefghijabcdefghij", p);
  EXPECT_DOUBLE_EQ(empty.containment(full), 0.0);
  EXPECT_DOUBLE_EQ(empty.jaccard(empty), 1.0);
  EXPECT_TRUE(empty.empty());
}

TEST(FingerprintSet, TooShortForOneKgram) {
  const Params p{.k = 8, .window = 4};
  EXPECT_TRUE(FingerprintSet::of_text("short", p).empty());
}

TEST(FingerprintSet, SymbolsAndTextAgreeOnStructure) {
  const Params p{.k = 4, .window = 3};
  std::vector<std::uint32_t> syms = {1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 9, 9};
  const auto a = FingerprintSet::of_symbols(syms, p);
  EXPECT_FALSE(a.empty());
  EXPECT_DOUBLE_EQ(a.containment(a), 1.0);
}

// Property: a document edited slightly keeps high overlap; replaced
// entirely keeps low overlap. (What labeling relies on, §III.B.)
class WinnowDrift : public ::testing::TestWithParam<int> {};

TEST_P(WinnowDrift, SmallEditsKeepHighOverlap) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 13);
  const Params p{.k = 8, .window = 4};
  std::string doc = rng.string_over("abcdefghijklmnop(){};=.,", 3000);
  std::string edited = doc;
  // ~1% point edits
  for (int i = 0; i < 30; ++i) {
    edited[rng.index(edited.size())] = 'Z';
  }
  const auto a = FingerprintSet::of_text(doc, p);
  const auto b = FingerprintSet::of_text(edited, p);
  EXPECT_GT(b.containment(a), 0.75);
  const std::string other = rng.string_over("qrstuvwxyZABC[]!#", 3000);
  const auto c = FingerprintSet::of_text(other, p);
  EXPECT_LT(c.containment(a), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WinnowDrift, ::testing::Range(0, 15));

TEST(Intersection, MultisetSemantics) {
  const Params p{.k = 2, .window = 1};  // window 1: every k-gram selected
  const std::vector<std::uint32_t> a = {1, 2, 1, 2, 1};  // 12, 21, 12, 21
  const std::vector<std::uint32_t> b = {1, 2, 1, 9, 9};  // 12, 21, 19, 99
  const auto sa = FingerprintSet::of_symbols(a, p);
  const auto sb = FingerprintSet::of_symbols(b, p);
  // Shared: one "12" + one "21" (min of per-hash multiplicities).
  EXPECT_EQ(sa.intersection(sb), 2u);
  EXPECT_EQ(sa.intersection(sa), sa.size());
  EXPECT_EQ(FingerprintSet{}.intersection(sa), 0u);
}

TEST(SketchRulesOut, IdenticalSequencesNeverRuledOut) {
  // inter == own sketch size can never rule out distance 0.
  Rng rng(5);
  const Params p{.k = 4, .window = 4};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> s(7 + rng.index(400));
    for (auto& x : s) x = static_cast<std::uint32_t>(rng.index(20));
    const auto fp = FingerprintSet::of_symbols(s, p);
    EXPECT_FALSE(sketch_rules_out(fp.intersection(fp), s.size(), 0, p))
        << "len=" << s.size();
  }
}

TEST(SketchRulesOut, VacuousForShortStreams) {
  // Below max_len <= limit + (limit+1)(t-1) the floor is non-positive and
  // the tier must pass everything through to the DP.
  const Params p{.k = 4, .window = 4};
  EXPECT_FALSE(sketch_rules_out(0, 20, 2, p));
  EXPECT_FALSE(sketch_rules_out(0, 6, 0, p));
  // Long stream with zero overlap at a small limit: ruled out.
  EXPECT_TRUE(sketch_rules_out(0, 300, 10, p));
}

}  // namespace
}  // namespace kizzle::winnow
