#include <gtest/gtest.h>

#include "text/lexer.h"

namespace kizzle::text {
namespace {

std::vector<Token> strict(std::string_view src) {
  return lex(src, LexOptions{.tolerant = false});
}

TEST(Lexer, Fig8TokenizationExample) {
  // The paper's Fig 8: var Euur1V = this["l9D"]("ev#333399al");
  const auto tokens = strict(R"(var Euur1V = this["l9D"]("ev#333399al");)");
  ASSERT_EQ(tokens.size(), 11u);
  EXPECT_EQ(tokens[0].cls, TokenClass::Keyword);
  EXPECT_EQ(tokens[0].text, "var");
  EXPECT_EQ(tokens[1].cls, TokenClass::Identifier);
  EXPECT_EQ(tokens[1].text, "Euur1V");
  EXPECT_EQ(tokens[2].cls, TokenClass::Punctuator);
  EXPECT_EQ(tokens[3].cls, TokenClass::Keyword);  // this
  EXPECT_EQ(tokens[4].cls, TokenClass::Punctuator);
  EXPECT_EQ(tokens[5].cls, TokenClass::String);
  EXPECT_EQ(tokens[5].text, "\"l9D\"");
  EXPECT_EQ(tokens[8].cls, TokenClass::String);
  EXPECT_EQ(tokens[8].text, "\"ev#333399al\"");
}

TEST(Lexer, KeywordsVsIdentifiers) {
  const auto tokens = strict("var varx function functions");
  EXPECT_EQ(tokens[0].cls, TokenClass::Keyword);
  EXPECT_EQ(tokens[1].cls, TokenClass::Identifier);
  EXPECT_EQ(tokens[2].cls, TokenClass::Keyword);
  EXPECT_EQ(tokens[3].cls, TokenClass::Identifier);
}

TEST(Lexer, NullTrueFalseAreKeywords) {
  const auto tokens = strict("null true false");
  for (const auto& t : tokens) EXPECT_EQ(t.cls, TokenClass::Keyword);
}

TEST(Lexer, DollarAndUnderscoreIdentifiers) {
  const auto tokens = strict("$x _y $ _");
  ASSERT_EQ(tokens.size(), 4u);
  for (const auto& t : tokens) EXPECT_EQ(t.cls, TokenClass::Identifier);
}

TEST(Lexer, StringEscapes) {
  const auto tokens = strict(R"("a\"b" 'c\'d')");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, R"("a\"b")");
  EXPECT_EQ(tokens[1].text, R"('c\'d')");
}

TEST(Lexer, UnterminatedStringStrictThrows) {
  EXPECT_THROW(strict("\"abc"), LexError);
}

TEST(Lexer, UnterminatedStringTolerated) {
  const auto tokens = lex("\"abc");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].cls, TokenClass::String);
}

TEST(Lexer, Numbers) {
  const auto tokens = strict("0 47 3.14 0x1F 1e3 2.5e-2 .5");
  ASSERT_EQ(tokens.size(), 7u);
  for (const auto& t : tokens) {
    EXPECT_EQ(t.cls, TokenClass::Number) << t.text;
  }
  EXPECT_EQ(tokens[3].text, "0x1F");
  EXPECT_EQ(tokens[6].text, ".5");
}

TEST(Lexer, NumberFollowedByIdentStartingWithE) {
  // "3e" with no exponent digits: the 'e' belongs to an identifier.
  const auto tokens = strict("3 ex");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].cls, TokenClass::Number);
  EXPECT_EQ(tokens[1].cls, TokenClass::Identifier);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = strict("a // line comment\nb /* block */ c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, UnterminatedBlockCommentStrictThrows) {
  EXPECT_THROW(strict("a /* never ends"), LexError);
}

TEST(Lexer, MultiCharPunctuators) {
  const auto tokens = strict("a===b !== c >>>= d += e");
  std::vector<std::string> punct;
  for (const auto& t : tokens) {
    if (t.cls == TokenClass::Punctuator) punct.push_back(t.text);
  }
  EXPECT_EQ(punct, (std::vector<std::string>{"===", "!==", ">>>=", "+="}));
}

TEST(Lexer, RegexLiteralAfterPunctuator) {
  const auto tokens = strict("x = /ab+c/g;");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].cls, TokenClass::Regex);
  EXPECT_EQ(tokens[2].text, "/ab+c/g");
}

TEST(Lexer, DivisionAfterIdentifier) {
  const auto tokens = strict("a / b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].cls, TokenClass::Punctuator);
  EXPECT_EQ(tokens[1].text, "/");
}

TEST(Lexer, RegexWithClassContainingSlash) {
  const auto tokens = strict("x = /[/]/;");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].cls, TokenClass::Regex);
}

TEST(Lexer, RegexAfterKeyword) {
  const auto tokens = strict("return /x/");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].cls, TokenClass::Regex);
}

TEST(Lexer, NoRegexAfterThis) {
  const auto tokens = strict("this / that");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].cls, TokenClass::Punctuator);
}

TEST(Lexer, OffsetsPointIntoSource) {
  const std::string src = "var  abc = 1;";
  const auto tokens = strict(src);
  for (const auto& t : tokens) {
    EXPECT_EQ(src.substr(t.offset, t.text.size()), t.text);
  }
}

TEST(Lexer, ToleratesGarbageBytes) {
  const auto tokens = lex("a @ b \x01 c");
  // '@' and '\x01' become single-char punctuators in tolerant mode.
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[1].cls, TokenClass::Punctuator);
}

TEST(Lexer, StrictRejectsGarbageBytes) {
  EXPECT_THROW(strict("a @ b"), LexError);
}

TEST(Lexer, EmptyInput) {
  EXPECT_TRUE(strict("").empty());
  EXPECT_TRUE(strict("   \n\t ").empty());
}

TEST(Lexer, NormalizedTextStripsQuotes) {
  const auto tokens = strict(R"("ev#333399al" 'x' notstring)");
  EXPECT_EQ(normalized_text(tokens[0]), "ev#333399al");
  EXPECT_EQ(normalized_text(tokens[1]), "x");
  EXPECT_EQ(normalized_text(tokens[2]), "notstring");
}

TEST(Lexer, TokenClassNames) {
  EXPECT_EQ(token_class_name(TokenClass::Keyword), "Keyword");
  EXPECT_EQ(token_class_name(TokenClass::Punctuator), "Punctuation");
  EXPECT_EQ(token_class_name(TokenClass::String), "String");
}

// Larger script smoke: a realistic packer body lexes fully.
TEST(Lexer, PackerBodySmoke) {
  const char* src = R"JS(
var buffer="";
var delim="y6";
function collect(text) { buffer += text; }
collect("47 y642y6100y6");
pieces = buffer.split(delim);
screlem = document.createElement("script");
for (var i=0; i<pieces.length; i++) {
  screlem.text += String.fromCharCode(pieces[i]);
}
document.body.appendChild(screlem);
)JS";
  const auto tokens = strict(src);
  EXPECT_GT(tokens.size(), 60u);
}

}  // namespace
}  // namespace kizzle::text
