// Hostile-input hardening tests (ROADMAP item 4): the ingest path fed
// systematically corrupted bytes.
//
//   * mutation corpus — starting from a valid `.kpf` bundle and a valid
//     serialized prefilter, every byte is bit-flipped and every prefix
//     truncation is tried; each mutant must produce either a successful
//     load or a kizzle::Error subclass. Any other exception type, crash,
//     hang or sanitizer report (the asan/ubsan CI job runs this test) is
//     a regression.
//   * targeted header-field mutations — magic, version, endianness,
//     declared sizes — must map to the documented taxonomy classes
//     (ArtifactError for malformed, ResourceError for implausible
//     sizes).
//   * committed-corpus replay — every seed and regression input under
//     fuzz/ (KIZZLE_FUZZ_DIR) is replayed through its loader on every
//     ctest run, so fuzzing findings stay fixed forever.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "core/sigdb.h"
#include "match/prefilter.h"
#include "support/errors.h"
#include "text/normalize.h"
#include "unpack/unpackers.h"

namespace kizzle {
namespace {

std::vector<core::DeployedSignature> sample_signatures() {
  core::DeployedSignature a;
  a.name = "KZ.RIG.1";
  a.family = "RIG";
  a.issued_day = 64;
  a.token_length = 120;
  a.pattern = "documentwriteunescape[0-9a-f]{2,8}";
  core::DeployedSignature b;
  b.name = "KZ.Nuclear.2";
  b.family = "Nuclear";
  b.issued_day = 77;
  b.token_length = 88;
  b.pattern = "evalstringfromcharcode";
  return {a, b};
}

std::string valid_artifact_bytes() {
  std::ostringstream os;
  core::save_artifact(os, sample_signatures());
  return os.str();
}

std::string valid_prefilter_bytes() {
  match::LiteralPrefilter pf;
  pf.add(0, "documentwriteunescape");
  pf.add(1, "evalstringfromcharcode");
  pf.build();
  std::ostringstream os;
  pf.serialize(os);
  return os.str();
}

// Runs one loader invocation on `bytes`. Success and kizzle::Error are
// both acceptable; anything else fails the test with the mutation's
// coordinates.
template <typename LoadFn>
void expect_typed_rejection(const std::string& bytes, LoadFn load,
                            const char* what, std::size_t at) {
  try {
    load(bytes);
  } catch (const Error&) {
    // The taxonomy working as designed.
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << " at offset " << at
                  << ": escaped the taxonomy with: " << e.what();
  } catch (...) {
    ADD_FAILURE() << what << " at offset " << at
                  << ": escaped with a non-exception throw";
  }
}

void load_artifact_bytes(const std::string& bytes) {
  std::istringstream is(bytes);
  (void)core::load_artifact(is);
}

void load_prefilter_bytes(const std::string& bytes) {
  std::istringstream is(bytes);
  (void)match::LiteralPrefilter::load(is);
}

template <typename LoadFn>
void mutation_sweep(const std::string& valid, LoadFn load) {
  // Sanity: the unmutated bytes load.
  ASSERT_NO_THROW(load(valid));
  // Every prefix truncation (byte granularity).
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    expect_typed_rejection(valid.substr(0, cut), load, "truncation", cut);
  }
  // A bit flip in every byte (rotating bit position keeps the sweep to
  // one load per byte while still exercising every bit lane).
  for (std::size_t i = 0; i < valid.size(); ++i) {
    std::string mutant = valid;
    mutant[i] = static_cast<char>(
        static_cast<unsigned char>(mutant[i]) ^ (1u << (i % 8)));
    expect_typed_rejection(mutant, load, "bit flip", i);
  }
}

std::string valid_delta_bytes() {
  const auto sigs = sample_signatures();
  const std::vector<core::DeployedSignature> base(sigs.begin(),
                                                  sigs.begin() + 1);
  core::DeltaArtifact delta;
  delta.base_fingerprint = core::fingerprint(base);
  delta.added = {sigs[1]};
  delta.result_fingerprint = core::fingerprint(sigs);
  std::ostringstream os;
  core::save_delta(os, delta);
  return os.str();
}

void load_delta_bytes(const std::string& bytes) {
  std::istringstream is(bytes);
  (void)core::load_delta(is);
}

// The zero-copy span loader must be exactly as hostile-proof as the
// istream loader it shadows.
void load_artifact_span(const std::string& bytes) {
  (void)core::load_artifact(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()));
}

TEST(HostileInput, ArtifactSurvivesFullMutationSweep) {
  mutation_sweep(valid_artifact_bytes(), load_artifact_bytes);
}

TEST(HostileInput, ArtifactSpanLoaderSurvivesFullMutationSweep) {
  mutation_sweep(valid_artifact_bytes(), load_artifact_span);
}

TEST(HostileInput, DeltaSurvivesFullMutationSweep) {
  mutation_sweep(valid_delta_bytes(), load_delta_bytes);
}

TEST(HostileInput, PrefilterSurvivesFullMutationSweep) {
  mutation_sweep(valid_prefilter_bytes(), load_prefilter_bytes);
}

// --------------------- targeted header mutations ---------------------

std::string with_u64_at(std::string bytes, std::size_t offset,
                        std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  return bytes;
}

TEST(HostileInput, ArtifactBadMagicIsArtifactError) {
  std::string bytes = valid_artifact_bytes();
  bytes[0] = 'X';
  EXPECT_THROW(load_artifact_bytes(bytes), ArtifactError);
}

TEST(HostileInput, ArtifactBadVersionIsArtifactError) {
  std::string bytes = valid_artifact_bytes();
  bytes[8] = 0x7F;  // version field follows the 8-byte magic
  EXPECT_THROW(load_artifact_bytes(bytes), ArtifactError);
}

TEST(HostileInput, ArtifactForeignEndiannessIsArtifactError) {
  std::string bytes = valid_artifact_bytes();
  std::swap(bytes[12], bytes[15]);  // byte-swap the endian sentinel
  EXPECT_THROW(load_artifact_bytes(bytes), ArtifactError);
}

TEST(HostileInput, ArtifactHugeDeclaredDbIsResourceError) {
  // db_len lives at offset 16 (magic 8 + version 4 + endian 4). A
  // declared multi-terabyte database must be refused before allocation.
  const std::string bytes =
      with_u64_at(valid_artifact_bytes(), 16, std::uint64_t{1} << 40);
  EXPECT_THROW(load_artifact_bytes(bytes), ResourceError);
}

TEST(HostileInput, PrefilterHugeDeclaredTableIsResourceError) {
  // KZPF v2: the u64 at offset 16 (magic 4 + version 4 + endian 4 +
  // pad 4) declares the payload size. A multi-terabyte claim must be
  // refused before anything is allocated or read at that scale.
  const std::string bytes =
      with_u64_at(valid_prefilter_bytes(), 16, std::uint64_t{1} << 40);
  EXPECT_THROW(load_prefilter_bytes(bytes), ResourceError);
}

TEST(HostileInput, TypedErrorsShareTheCommonBase) {
  // One handler for "any clean rejection" is the whole point of the base
  // class; verify the hierarchy is wired the way fuzz harnesses assume.
  EXPECT_THROW(load_artifact_bytes("KZBUNDLEgarbage"), Error);
  EXPECT_THROW(load_artifact_bytes("KZBUNDLEgarbage"), std::runtime_error);
  EXPECT_THROW(load_prefilter_bytes("XXXX"), Error);
}

// ------------------------- corpus replay -------------------------

std::vector<std::filesystem::path> corpus_files(const std::string& target) {
  std::vector<std::filesystem::path> files;
  for (const char* root : {"corpus", "regressions"}) {
    const std::filesystem::path dir =
        std::filesystem::path(KIZZLE_FUZZ_DIR) / root / target;
    if (!std::filesystem::is_directory(dir)) continue;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file() &&
          entry.path().filename() != ".gitkeep") {
        files.push_back(entry.path());
      }
    }
  }
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(HostileInput, CommittedArtifactCorpusReplays) {
  const auto files = corpus_files("load_artifact");
  ASSERT_FALSE(files.empty()) << "seed corpus missing from fuzz/";
  for (const auto& file : files) {
    expect_typed_rejection(slurp(file), load_artifact_bytes,
                           file.c_str(), 0);
  }
}

TEST(HostileInput, CommittedPrefilterCorpusReplays) {
  const auto files = corpus_files("prefilter_load");
  ASSERT_FALSE(files.empty()) << "seed corpus missing from fuzz/";
  for (const auto& file : files) {
    expect_typed_rejection(slurp(file), load_prefilter_bytes,
                           file.c_str(), 0);
  }
}

TEST(HostileInput, CommittedNormalizeCorpusNeverThrows) {
  const auto files = corpus_files("normalize");
  ASSERT_FALSE(files.empty()) << "seed corpus missing from fuzz/";
  for (const auto& file : files) {
    const std::string bytes = slurp(file);
    EXPECT_NO_THROW({
      (void)text::normalize_raw(bytes);
      (void)text::normalize_js(bytes);
      (void)text::normalize_document(bytes);
    }) << file;
  }
}

TEST(HostileInput, CommittedUnpackCorpusNeverThrows) {
  const auto files = corpus_files("unpack");
  ASSERT_FALSE(files.empty()) << "seed corpus missing from fuzz/";
  for (const auto& file : files) {
    const std::string bytes = slurp(file);
    EXPECT_NO_THROW((void)unpack::unpack_fixpoint(bytes)) << file;
  }
}

TEST(HostileInput, CommittedArtifactV2CorpusReplays) {
  const auto files = corpus_files("artifact_v2");
  ASSERT_FALSE(files.empty()) << "seed corpus missing from fuzz/";
  for (const auto& file : files) {
    const std::string bytes = slurp(file);
    if (bytes.size() >= 8 && bytes.compare(0, 8, core::kDeltaMagic) == 0) {
      expect_typed_rejection(bytes, load_delta_bytes, file.c_str(), 0);
    } else {
      expect_typed_rejection(bytes, load_artifact_bytes, file.c_str(), 0);
      expect_typed_rejection(bytes, load_artifact_span, file.c_str(), 0);
    }
  }
}

TEST(HostileInput, CommittedLintCorpusReplays) {
  const auto files = corpus_files("lint");
  ASSERT_FALSE(files.empty()) << "seed corpus missing from fuzz/";
  const auto lint_bytes = [](const std::string& bytes) {
    std::istringstream is(bytes);
    (void)analyze::analyze_artifact(is);
  };
  for (const auto& file : files) {
    expect_typed_rejection(slurp(file), lint_bytes, file.c_str(), 0);
  }
  // The mutation sweep over a valid bundle: the linter must diagnose or
  // reject every near-valid mutant, never crash or hang on one.
  mutation_sweep(valid_artifact_bytes(), lint_bytes);
}

}  // namespace
}  // namespace kizzle
