#include <gtest/gtest.h>

#include <cmath>

#include "cluster/dbscan.h"
#include "support/interner.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "text/abstraction.h"
#include "text/lexer.h"
#include "winnow/winnow.h"

namespace kizzle::cluster {
namespace {

// 1-D points with absolute distance — easy to reason about.
DbscanResult cluster_1d(const std::vector<double>& xs,
                        const DbscanParams& params,
                        const std::vector<std::size_t>& weights = {}) {
  return dbscan(
      xs.size(),
      [&](std::size_t i, std::size_t j) { return std::abs(xs[i] - xs[j]); },
      weights, params);
}

TEST(Dbscan, TwoObviousClusters) {
  const std::vector<double> xs = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.n_clusters, 2);
  EXPECT_EQ(r.label[0], r.label[1]);
  EXPECT_EQ(r.label[1], r.label[2]);
  EXPECT_EQ(r.label[3], r.label[4]);
  EXPECT_NE(r.label[0], r.label[3]);
}

TEST(Dbscan, IsolatedPointIsNoise) {
  const std::vector<double> xs = {0.0, 0.1, 0.2, 50.0};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.label[3], kNoise);
}

TEST(Dbscan, MinMassRespected) {
  const std::vector<double> xs = {0.0, 0.1};  // only 2 points
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.n_clusters, 0);
  EXPECT_EQ(r.label[0], kNoise);
}

TEST(Dbscan, WeightsCountTowardMass) {
  // A single point standing for 5 identical samples is a core point.
  const std::vector<double> xs = {0.0};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3}, {5});
  EXPECT_EQ(r.n_clusters, 1);
  EXPECT_EQ(r.label[0], 0);
}

TEST(Dbscan, ChainExpansion) {
  // Density-reachability: a chain of close points forms one cluster.
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(i * 0.4);
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.n_clusters, 1);
  for (int l : r.label) EXPECT_EQ(l, 0);
}

TEST(Dbscan, BorderPointJoinsCluster) {
  // Border point: within eps of a core point but not core itself.
  const std::vector<double> xs = {0.0, 0.1, 0.2, 0.65};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.label[3], r.label[0]);
}

TEST(Dbscan, MembersPartitionNonNoise) {
  const std::vector<double> xs = {0.0, 0.1, 0.2, 9.0, 9.1, 9.2, 50.0};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  const auto members = r.members();
  std::size_t count = 0;
  for (const auto& c : members) count += c.size();
  EXPECT_EQ(count, 6u);
}

TEST(Dbscan, WeightSizeMismatchThrows) {
  const std::vector<double> xs = {0.0, 1.0};
  std::vector<std::size_t> weights = {1};
  EXPECT_THROW(cluster_1d(xs, {.eps = 0.5, .min_mass = 1}, weights),
               std::invalid_argument);
}

TEST(Dbscan, EmptyInput) {
  const auto r = cluster_1d({}, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.n_clusters, 0);
  EXPECT_TRUE(r.label.empty());
}

// --------------------------- TokenDbscan -----------------------------

std::vector<std::uint32_t> stream_of(std::string_view js, Interner& in) {
  const auto tokens = text::lex(js);
  return abstract_tokens(tokens, text::Abstraction::KeywordsAndPunct, in);
}

TEST(TokenDbscan, SameFamilyDifferentIdentifiersCluster) {
  Interner in;
  std::vector<std::vector<std::uint32_t>> streams = {
      stream_of("var a1=this[\"x\"](\"e1\");var b=1;function f(){return b}", in),
      stream_of("var q9=this[\"y\"](\"e2\");var c=2;function g(){return c}", in),
      stream_of("var zz=this[\"w\"](\"e3\");var d=3;function h(){return d}", in),
      stream_of("for(var i=0;i<10;i++){document.write(i)}", in),
  };
  TokenDbscan db(streams, {}, {.eps = 0.10, .min_mass = 3});
  const auto r = db.run();
  EXPECT_EQ(r.n_clusters, 1);
  EXPECT_EQ(r.label[0], r.label[1]);
  EXPECT_EQ(r.label[1], r.label[2]);
  EXPECT_EQ(r.label[3], kNoise);
}

TEST(TokenDbscan, PrunersNeverChangeTheAnswer) {
  // Distances computed with/without pruning must produce identical
  // clustering: compare against the generic dbscan on exact distances.
  Rng rng(99);
  Interner in;
  std::vector<std::vector<std::uint32_t>> streams;
  for (int fam = 0; fam < 3; ++fam) {
    std::string base;
    for (int i = 0; i < 40; ++i) {
      base += "var " + std::string(1, static_cast<char>('a' + fam)) +
              std::to_string(i) + "=" + std::to_string(fam * 1000 + i) + ";";
    }
    for (int rep = 0; rep < 4; ++rep) {
      streams.push_back(stream_of(base, in));
    }
  }
  const DbscanParams params{.eps = 0.10, .min_mass = 3};
  TokenDbscan db(streams, {}, params);
  const auto fast = db.run();
  const auto exact = dbscan(
      streams.size(),
      [&](std::size_t i, std::size_t j) {
        return dist::normalized_edit_distance(streams[i], streams[j]);
      },
      {}, params);
  EXPECT_EQ(fast.n_clusters, exact.n_clusters);
  // Same partition up to label renaming: compare co-membership.
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = 0; j < streams.size(); ++j) {
      EXPECT_EQ(fast.label[i] == fast.label[j],
                exact.label[i] == exact.label[j])
          << i << "," << j;
    }
  }
}

TEST(TokenDbscan, StatsShowPruning) {
  Interner in;
  std::vector<std::vector<std::uint32_t>> streams = {
      stream_of("var a=1;", in),
      stream_of(std::string(2000, 'x') + "();", in),  // very different length
      stream_of("var b=2;", in),
  };
  TokenDbscan db(streams, {}, {.eps = 0.10, .min_mass = 2});
  db.run();
  EXPECT_GT(db.stats().pairs_pruned_length, 0u);
}

// Random family-structured corpus: `families` base streams, each repeated
// with small random edits (within eps) plus some unrelated noise streams.
std::vector<std::vector<std::uint32_t>> random_corpus(Rng& rng,
                                                      std::size_t families,
                                                      std::size_t reps,
                                                      std::size_t noise) {
  std::vector<std::vector<std::uint32_t>> streams;
  for (std::size_t f = 0; f < families; ++f) {
    const std::size_t len = 60 + rng.index(240);
    std::vector<std::uint32_t> base(len);
    for (auto& x : base) x = static_cast<std::uint32_t>(rng.index(50));
    for (std::size_t r = 0; r < reps; ++r) {
      auto s = base;
      const std::size_t edits = rng.index(1 + len / 25);
      for (std::size_t e = 0; e < edits; ++e) {
        s[rng.index(s.size())] = static_cast<std::uint32_t>(50 + rng.index(9));
      }
      streams.push_back(std::move(s));
    }
  }
  for (std::size_t x = 0; x < noise; ++x) {
    std::vector<std::uint32_t> s(40 + rng.index(300));
    for (auto& v : s) v = static_cast<std::uint32_t>(rng.index(50));
    streams.push_back(std::move(s));
  }
  return streams;
}

// The oracle: the neighbor-graph TokenDbscan must produce *identical*
// labels (not just the same partition) to generic DBSCAN over the exact
// normalized edit distance, serial and parallel alike — the graph depends
// only on the distance predicate, never on execution order.
class GraphOracle : public ::testing::TestWithParam<int> {};

TEST_P(GraphOracle, IdenticalLabelsToExactDbscan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 17);
  const auto streams = random_corpus(rng, 4, 5, 6);
  std::vector<std::size_t> weights;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    weights.push_back(1 + rng.index(4));
  }
  const DbscanParams params{.eps = 0.10, .min_mass = 3};
  const auto exact = dbscan(
      streams.size(),
      [&](std::size_t i, std::size_t j) {
        return dist::normalized_edit_distance(streams[i], streams[j]);
      },
      weights, params);

  TokenDbscan serial(streams, weights, params);
  EXPECT_EQ(serial.run().label, exact.label);

  ThreadPool pool(4);
  TokenDbscan parallel(streams, weights, params, &pool);
  EXPECT_EQ(parallel.run().label, exact.label);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphOracle, ::testing::Range(0, 8));

TEST(TokenDbscan, EachUnorderedPairDpAtMostOnce) {
  Rng rng(31337);
  const auto streams = random_corpus(rng, 3, 6, 4);
  const std::size_t n = streams.size();
  TokenDbscan db(streams, {}, {.eps = 0.10, .min_mass = 3});
  db.run();
  const auto& st = db.stats();
  const std::size_t all_pairs = n * (n - 1) / 2;
  // Every unordered pair is accounted for exactly once, and the DP runs
  // at most once per pair (the seed paid for both orientations and then
  // re-paid on every region query).
  EXPECT_EQ(st.pairs_considered, all_pairs);
  EXPECT_LE(st.dp_computations, all_pairs);
  EXPECT_LE(st.pairs_pruned_length + st.pairs_pruned_histogram +
                st.pairs_pruned_sketch + st.dp_computations,
            all_pairs);
  EXPECT_GE(st.graph_seconds, 0.0);
}

TEST(TokenDbscan, SketchTierNeverChangesTheAnswer) {
  // Streams with identical histograms but shuffled order: the histogram
  // bound is blind to them, the sketch tier is not. The labels must still
  // match the exact oracle.
  Rng rng(77);
  std::vector<std::vector<std::uint32_t>> streams;
  // Long enough that the DP-work gate keeps the sketch tier engaged.
  std::vector<std::uint32_t> base(600);
  for (auto& x : base) x = static_cast<std::uint32_t>(rng.index(30));
  for (int r = 0; r < 4; ++r) streams.push_back(base);
  for (int s = 0; s < 4; ++s) {
    auto shuffled = base;
    rng.shuffle(shuffled);
    streams.push_back(std::move(shuffled));
  }
  const DbscanParams params{.eps = 0.10, .min_mass = 3};
  TokenDbscan db(streams, {}, params);
  const auto fast = db.run();
  const auto exact = dbscan(
      streams.size(),
      [&](std::size_t i, std::size_t j) {
        return dist::normalized_edit_distance(streams[i], streams[j]);
      },
      {}, params);
  EXPECT_EQ(fast.label, exact.label);
  EXPECT_GT(db.stats().pairs_pruned_sketch, 0u);
}

TEST(SketchBound, NeverContradictsTrueDistance) {
  // Property behind the sketch tier: whenever sketch_rules_out fires for
  // some limit, the true edit distance must exceed that limit.
  Rng rng(4242);
  const winnow::Params params{.k = 4, .window = 4};
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t len = 20 + rng.index(260);
    std::vector<std::uint32_t> a(len);
    for (auto& x : a) x = static_cast<std::uint32_t>(rng.index(25));
    auto b = a;
    const std::size_t edits = rng.index(1 + len / 4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.index(b.size());
      switch (rng.index(3)) {
        case 0:
          b[pos] = static_cast<std::uint32_t>(25 + rng.index(8));
          break;
        case 1:
          b.erase(b.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
        default:
          b.insert(b.begin() + static_cast<std::ptrdiff_t>(pos),
                   static_cast<std::uint32_t>(25 + rng.index(8)));
          break;
      }
      if (b.empty()) break;
    }
    const auto sa = winnow::FingerprintSet::of_symbols(a, params);
    const auto sb = winnow::FingerprintSet::of_symbols(b, params);
    const std::size_t inter = sa.intersection(sb);
    const std::size_t longest = std::max(a.size(), b.size());
    const std::size_t d = dist::edit_distance(a, b);
    for (std::size_t limit = 0; limit <= longest / 3; ++limit) {
      if (winnow::sketch_rules_out(inter, longest, limit, params)) {
        EXPECT_GT(d, limit) << "len=" << len << " edits=" << edits;
      }
    }
  }
}

}  // namespace
}  // namespace kizzle::cluster
