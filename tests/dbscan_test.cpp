#include <gtest/gtest.h>

#include <cmath>

#include "cluster/dbscan.h"
#include "support/interner.h"
#include "support/rng.h"
#include "text/abstraction.h"
#include "text/lexer.h"

namespace kizzle::cluster {
namespace {

// 1-D points with absolute distance — easy to reason about.
DbscanResult cluster_1d(const std::vector<double>& xs,
                        const DbscanParams& params,
                        const std::vector<std::size_t>& weights = {}) {
  return dbscan(
      xs.size(),
      [&](std::size_t i, std::size_t j) { return std::abs(xs[i] - xs[j]); },
      weights, params);
}

TEST(Dbscan, TwoObviousClusters) {
  const std::vector<double> xs = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.n_clusters, 2);
  EXPECT_EQ(r.label[0], r.label[1]);
  EXPECT_EQ(r.label[1], r.label[2]);
  EXPECT_EQ(r.label[3], r.label[4]);
  EXPECT_NE(r.label[0], r.label[3]);
}

TEST(Dbscan, IsolatedPointIsNoise) {
  const std::vector<double> xs = {0.0, 0.1, 0.2, 50.0};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.label[3], kNoise);
}

TEST(Dbscan, MinMassRespected) {
  const std::vector<double> xs = {0.0, 0.1};  // only 2 points
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.n_clusters, 0);
  EXPECT_EQ(r.label[0], kNoise);
}

TEST(Dbscan, WeightsCountTowardMass) {
  // A single point standing for 5 identical samples is a core point.
  const std::vector<double> xs = {0.0};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3}, {5});
  EXPECT_EQ(r.n_clusters, 1);
  EXPECT_EQ(r.label[0], 0);
}

TEST(Dbscan, ChainExpansion) {
  // Density-reachability: a chain of close points forms one cluster.
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(i * 0.4);
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.n_clusters, 1);
  for (int l : r.label) EXPECT_EQ(l, 0);
}

TEST(Dbscan, BorderPointJoinsCluster) {
  // Border point: within eps of a core point but not core itself.
  const std::vector<double> xs = {0.0, 0.1, 0.2, 0.65};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.label[3], r.label[0]);
}

TEST(Dbscan, MembersPartitionNonNoise) {
  const std::vector<double> xs = {0.0, 0.1, 0.2, 9.0, 9.1, 9.2, 50.0};
  const auto r = cluster_1d(xs, {.eps = 0.5, .min_mass = 3});
  const auto members = r.members();
  std::size_t count = 0;
  for (const auto& c : members) count += c.size();
  EXPECT_EQ(count, 6u);
}

TEST(Dbscan, WeightSizeMismatchThrows) {
  const std::vector<double> xs = {0.0, 1.0};
  std::vector<std::size_t> weights = {1};
  EXPECT_THROW(cluster_1d(xs, {.eps = 0.5, .min_mass = 1}, weights),
               std::invalid_argument);
}

TEST(Dbscan, EmptyInput) {
  const auto r = cluster_1d({}, {.eps = 0.5, .min_mass = 3});
  EXPECT_EQ(r.n_clusters, 0);
  EXPECT_TRUE(r.label.empty());
}

// --------------------------- TokenDbscan -----------------------------

std::vector<std::uint32_t> stream_of(std::string_view js, Interner& in) {
  const auto tokens = text::lex(js);
  return abstract_tokens(tokens, text::Abstraction::KeywordsAndPunct, in);
}

TEST(TokenDbscan, SameFamilyDifferentIdentifiersCluster) {
  Interner in;
  std::vector<std::vector<std::uint32_t>> streams = {
      stream_of("var a1=this[\"x\"](\"e1\");var b=1;function f(){return b}", in),
      stream_of("var q9=this[\"y\"](\"e2\");var c=2;function g(){return c}", in),
      stream_of("var zz=this[\"w\"](\"e3\");var d=3;function h(){return d}", in),
      stream_of("for(var i=0;i<10;i++){document.write(i)}", in),
  };
  TokenDbscan db(streams, {}, {.eps = 0.10, .min_mass = 3});
  const auto r = db.run();
  EXPECT_EQ(r.n_clusters, 1);
  EXPECT_EQ(r.label[0], r.label[1]);
  EXPECT_EQ(r.label[1], r.label[2]);
  EXPECT_EQ(r.label[3], kNoise);
}

TEST(TokenDbscan, PrunersNeverChangeTheAnswer) {
  // Distances computed with/without pruning must produce identical
  // clustering: compare against the generic dbscan on exact distances.
  Rng rng(99);
  Interner in;
  std::vector<std::vector<std::uint32_t>> streams;
  for (int fam = 0; fam < 3; ++fam) {
    std::string base;
    for (int i = 0; i < 40; ++i) {
      base += "var " + std::string(1, static_cast<char>('a' + fam)) +
              std::to_string(i) + "=" + std::to_string(fam * 1000 + i) + ";";
    }
    for (int rep = 0; rep < 4; ++rep) {
      streams.push_back(stream_of(base, in));
    }
  }
  const DbscanParams params{.eps = 0.10, .min_mass = 3};
  TokenDbscan db(streams, {}, params);
  const auto fast = db.run();
  const auto exact = dbscan(
      streams.size(),
      [&](std::size_t i, std::size_t j) {
        return dist::normalized_edit_distance(streams[i], streams[j]);
      },
      {}, params);
  EXPECT_EQ(fast.n_clusters, exact.n_clusters);
  // Same partition up to label renaming: compare co-membership.
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = 0; j < streams.size(); ++j) {
      EXPECT_EQ(fast.label[i] == fast.label[j],
                exact.label[i] == exact.label[j])
          << i << "," << j;
    }
  }
}

TEST(TokenDbscan, StatsShowPruning) {
  Interner in;
  std::vector<std::vector<std::uint32_t>> streams = {
      stream_of("var a=1;", in),
      stream_of(std::string(2000, 'x') + "();", in),  // very different length
      stream_of("var b=2;", in),
  };
  TokenDbscan db(streams, {}, {.eps = 0.10, .min_mass = 2});
  db.run();
  EXPECT_GT(db.stats().pairs_pruned_length, 0u);
}

}  // namespace
}  // namespace kizzle::cluster
