// Streaming scan + persistent automaton tests (the deployment-channel
// tentpole): StreamingMatcher must be byte-identical to one-shot
// candidates() over every chunking of a corpus, serialize()/load() must
// round-trip to an automaton with identical output, and the bundle
// artifact must drive SignatureBundle to identical verdicts without a
// per-process rebuild.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/deploy.h"
#include "core/pipeline.h"
#include "core/sigdb.h"
#include "kitgen/families.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "kitgen/stream.h"
#include "match/pattern.h"
#include "match/prefilter.h"
#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::match {
namespace {

// ----------------------------- corpus setup -----------------------------

std::vector<std::string> kitgen_corpus() {
  Rng rng(0xFEED5EED);
  std::vector<std::string> samples;
  for (int i = 0; i < 4; ++i) {
    kitgen::PayloadSpec spec;
    spec.family = kitgen::KitFamily::Nuclear;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
    spec.av_check = true;
    spec.urls = {kitgen::make_landing_url(rng)};
    samples.push_back(text::normalize_raw(
        pack_nuclear(payload_text(spec), kitgen::NuclearPackerState{}, rng)));
    spec.family = kitgen::KitFamily::Rig;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
    samples.push_back(text::normalize_raw(
        pack_rig(payload_text(spec), kitgen::RigPackerState{}, rng)));
  }
  samples.push_back("");                      // empty document
  samples.push_back("no literals here at all");
  return samples;
}

// A prefilter shaped like a deployed database: literal chunks cut from the
// corpus (most from *other* samples), shared literals, and fallback ids.
LiteralPrefilter corpus_prefilter(const std::vector<std::string>& corpus) {
  LiteralPrefilter pf;
  Rng rng(0xAB);
  std::size_t id = 0;
  for (const std::string& text : corpus) {
    if (text.size() < 64) continue;
    for (int k = 0; k < 3; ++k) {
      const std::size_t len = 12 + rng.index(24);
      const std::size_t at = rng.index(text.size() - len);
      pf.add(id++, text.substr(at, len));
    }
  }
  pf.add(id++, "fromCharCode");
  pf.add(id++, "fromCharCode");  // shared literal
  pf.add(id++, "");              // fallback
  pf.add(id++, "");
  pf.build();
  return pf;
}

std::vector<std::size_t> chunk_sizes_for(std::size_t n) {
  std::vector<std::size_t> sizes = {1, 7, 4096};
  sizes.push_back(std::max<std::size_t>(n, 1));  // whole text in one chunk
  return sizes;
}

// ------------------------- chunking oracle tests -------------------------

TEST(StreamingMatcher, EveryChunkingMatchesOneShotCandidates) {
  const auto corpus = kitgen_corpus();
  const LiteralPrefilter pf = corpus_prefilter(corpus);
  for (const std::string& text : corpus) {
    const auto expect = pf.candidates(text);
    for (const std::size_t chunk : chunk_sizes_for(text.size())) {
      StreamingMatcher m(pf);
      for (std::size_t at = 0; at < text.size(); at += chunk) {
        m.feed(std::string_view(text).substr(at, chunk));
      }
      EXPECT_EQ(m.finish(), expect)
          << "text size " << text.size() << " chunk " << chunk;
      EXPECT_EQ(m.bytes_fed(), text.size());
    }
  }
}

TEST(StreamingMatcher, LiteralStraddlingEveryChunkBoundaryIsFound) {
  LiteralPrefilter pf;
  pf.add(0, "straddle");
  pf.add(1, "xyz");
  pf.build();
  const std::string text = "aa straddle bb xyz cc";
  const auto expect = pf.candidates(text);
  ASSERT_EQ(expect, (std::vector<std::size_t>{0, 1}));
  // Split at every position: each literal straddles some split.
  for (std::size_t split = 0; split <= text.size(); ++split) {
    StreamingMatcher m(pf);
    m.feed(std::string_view(text).substr(0, split));
    m.feed(std::string_view(text).substr(split));
    EXPECT_EQ(m.finish(), expect) << "split at " << split;
  }
}

TEST(StreamingMatcher, FinishIsASnapshotAndResetRewinds) {
  LiteralPrefilter pf;
  pf.add(0, "alpha");
  pf.add(1, "beta");
  pf.add(2, "");
  pf.build();
  StreamingMatcher m(pf);
  m.feed("has alp");
  EXPECT_EQ(m.finish(), (std::vector<std::size_t>{2}));
  m.feed("ha only");  // completes "alpha" across the two feeds
  EXPECT_EQ(m.finish(), (std::vector<std::size_t>{0, 2}));
  m.feed(" and beta");
  EXPECT_EQ(m.finish(), (std::vector<std::size_t>{0, 1, 2}));
  m.reset();
  EXPECT_EQ(m.bytes_fed(), 0u);
  EXPECT_EQ(m.finish(), (std::vector<std::size_t>{2}));
  m.feed("beta");
  EXPECT_EQ(m.finish(), (std::vector<std::size_t>{1, 2}));
}

TEST(StreamingMatcher, RequiresBuiltPrefilter) {
  LiteralPrefilter pf;
  pf.add(0, "abc");
  EXPECT_THROW(StreamingMatcher{pf}, std::logic_error);
}

TEST(StreamingMatcher, FallbackOnlyPrefilterYieldsFallbackIds) {
  LiteralPrefilter pf;
  pf.add(0, "");
  pf.add(1, "");
  pf.build();
  StreamingMatcher m(pf);
  m.feed("anything at all");
  EXPECT_EQ(m.finish(), (std::vector<std::size_t>{0, 1}));
}

// ------------------------ serialization round trip ------------------------

TEST(PrefilterSerialization, RoundTripIsByteIdenticalOnFullCorpus) {
  const auto corpus = kitgen_corpus();
  const LiteralPrefilter built = corpus_prefilter(corpus);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  built.serialize(blob);
  const LiteralPrefilter loaded = LiteralPrefilter::load(blob);

  EXPECT_EQ(loaded.id_count(), built.id_count());
  EXPECT_EQ(loaded.fallback_count(), built.fallback_count());
  EXPECT_EQ(loaded.fallback_ids(), built.fallback_ids());
  for (const std::string& text : corpus) {
    EXPECT_EQ(loaded.candidates(text), built.candidates(text));
  }
  // And chunked streaming over the loaded automaton agrees too.
  for (const std::string& text : corpus) {
    StreamingMatcher m(loaded);
    for (std::size_t at = 0; at < text.size(); at += 7) {
      m.feed(std::string_view(text).substr(at, 7));
    }
    EXPECT_EQ(m.finish(), built.candidates(text));
  }
}

TEST(PrefilterSerialization, LoadedAutomatonSupportsFurtherAddAndBuild) {
  LiteralPrefilter pf;
  pf.add(0, "first");
  pf.add(1, "");
  pf.build();
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  pf.serialize(blob);
  LiteralPrefilter loaded = LiteralPrefilter::load(blob);
  loaded.add(2, "second");
  loaded.build();
  EXPECT_EQ(loaded.candidates("first second"),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(PrefilterSerialization, SerializeBeforeBuildThrows) {
  LiteralPrefilter pf;
  pf.add(0, "abc");
  std::stringstream blob;
  EXPECT_THROW(pf.serialize(blob), std::logic_error);
}

TEST(PrefilterSerialization, RejectsCorruptInput) {
  LiteralPrefilter pf;
  pf.add(0, "needle");
  pf.add(1, "");
  pf.build();
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  pf.serialize(blob);
  const std::string good = blob.str();

  {  // bad magic
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream is(bad);
    EXPECT_THROW(LiteralPrefilter::load(is), std::runtime_error);
  }
  {  // unknown version
    std::string bad = good;
    bad[4] = static_cast<char>(0x7F);
    std::istringstream is(bad);
    EXPECT_THROW(LiteralPrefilter::load(is), std::runtime_error);
  }
  {  // foreign endianness
    std::string bad = good;
    std::swap(bad[8], bad[11]);
    std::istringstream is(bad);
    EXPECT_THROW(LiteralPrefilter::load(is), std::runtime_error);
  }
  {  // truncation
    std::istringstream is(good.substr(0, good.size() / 2));
    EXPECT_THROW(LiteralPrefilter::load(is), std::runtime_error);
  }
  {  // payload corruption is caught by the checksum
    std::string bad = good;
    bad[good.size() / 2] ^= 0x40;
    std::istringstream is(bad);
    EXPECT_THROW(LiteralPrefilter::load(is), std::runtime_error);
  }
}

TEST(PrefilterSerialization, EmptyAutomatonRoundTrips) {
  LiteralPrefilter pf;
  pf.build();
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  pf.serialize(blob);
  const LiteralPrefilter loaded = LiteralPrefilter::load(blob);
  EXPECT_EQ(loaded.id_count(), 0u);
  EXPECT_TRUE(loaded.candidates("whatever").empty());
}

}  // namespace
}  // namespace kizzle::match

// ------------------------- bundle artifact tests -------------------------

namespace kizzle::core {
namespace {

std::vector<DeployedSignature> artifact_signatures() {
  const std::vector<std::string> patterns = {
      "landingpage[0-9]+", "fromCharCode", "[0-9]+[a-z]+",  // fallback
      "substrabc\\(\\)",   "fromCharCode",                  // duplicate literal
  };
  std::vector<DeployedSignature> sigs;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    DeployedSignature s;
    s.name = "KZ.T." + std::to_string(i);
    s.family = "Test";
    s.issued_day = static_cast<int>(i);
    s.token_length = 10 + i;
    s.pattern = patterns[i];
    sigs.push_back(s);
  }
  return sigs;
}

TEST(BundleArtifact, RoundTripPreservesSignaturesAndPrefilter) {
  const auto sigs = artifact_signatures();
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  save_artifact(blob, sigs);
  const BundleArtifact loaded = load_artifact(blob);
  ASSERT_EQ(loaded.signatures.size(), sigs.size());
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    EXPECT_EQ(loaded.signatures[i].name, sigs[i].name);
    EXPECT_EQ(loaded.signatures[i].pattern, sigs[i].pattern);
    EXPECT_EQ(loaded.signatures[i].issued_day, sigs[i].issued_day);
    EXPECT_EQ(loaded.signatures[i].token_length, sigs[i].token_length);
  }
  EXPECT_EQ(loaded.prefilter.id_count(), sigs.size());

  // The loaded automaton's candidates are byte-identical to a fresh build.
  SignatureBundle fresh(sigs);
  const std::vector<std::string> texts = {
      "xx landingpage42", "xx fromCharCode yy", "123abc456", "substrabc()",
      "nothing", ""};
  for (const std::string& t : texts) {
    EXPECT_EQ(loaded.prefilter.candidates(t), fresh.prefilter().candidates(t))
        << t;
  }
}

TEST(BundleArtifact, ArtifactLoadedBundleMatchesFreshBundle) {
  const auto sigs = artifact_signatures();
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  save_artifact(blob, sigs);
  const SignatureBundle from_artifact(blob);
  const SignatureBundle fresh(sigs);
  ASSERT_EQ(from_artifact.size(), fresh.size());
  const std::vector<std::string> texts = {
      "xx landingpage42", "xx fromCharCode yy", "123abc456", "substrabc()",
      "nothing", ""};
  for (const std::string& t : texts) {
    EXPECT_EQ(from_artifact.match(t), fresh.match(t)) << t;
  }
}

TEST(BundleArtifact, RejectsBadMagicAndTruncation) {
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  save_artifact(blob, artifact_signatures());
  const std::string good = blob.str();
  {
    std::string bad = good;
    bad[0] = 'x';
    std::istringstream is(bad);
    EXPECT_THROW(load_artifact(is), std::runtime_error);
  }
  {
    std::istringstream is(good.substr(0, good.size() - 9));
    EXPECT_THROW(load_artifact(is), std::runtime_error);
  }
}

TEST(BundleArtifact, PipelineExportLoadsIntoEquivalentBundle) {
  // Run the real pipeline for a couple of simulated days, export the
  // artifact at release time, and check a deployment process loading it
  // scans identically to one rebuilding from the signature list.
  kitgen::StreamConfig scfg;
  scfg.volume_scale = 0.10;
  kitgen::StreamSimulator sim(scfg);
  KizzlePipeline pipeline(PipelineConfig{}, 20140801);
  for (const auto& [family, payload] : sim.seed_corpus()) {
    pipeline.seed_family(std::string(kitgen::family_name(family)), 0.55,
                         payload);
  }
  std::vector<std::string> scan_texts;
  for (int day = kitgen::kAug1; day < kitgen::kAug1 + 2; ++day) {
    const auto batch = sim.generate_day(day);
    std::vector<std::string> htmls;
    for (const auto& s : batch.samples) htmls.push_back(s.html);
    pipeline.process_day(day, htmls);
    for (std::size_t i = 0; i < htmls.size(); i += 7) {
      scan_texts.push_back(text::normalize_raw(htmls[i]));
    }
  }
  ASSERT_FALSE(pipeline.signatures().empty());

  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  pipeline.export_artifact(blob);
  const SignatureBundle from_artifact(blob);
  const SignatureBundle fresh(pipeline.signatures());
  ASSERT_EQ(from_artifact.size(), pipeline.signatures().size());
  for (const std::string& t : scan_texts) {
    EXPECT_EQ(from_artifact.match(t), fresh.match(t));
  }
}

TEST(BundleArtifact, EmptyPipelineExportsLoadableArtifact) {
  KizzlePipeline pipeline(PipelineConfig{}, 1);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  pipeline.export_artifact(blob);
  const SignatureBundle bundle(blob);
  EXPECT_EQ(bundle.size(), 0u);
  EXPECT_FALSE(bundle.match("anything").has_value());
}

// ----------------- chunked channel scans vs one-shot -----------------

TEST(BundleArtifact, StreamMatchEqualsOneShotOverAllChunkings) {
  const auto sigs = artifact_signatures();
  const SignatureBundle bundle(sigs);
  const std::vector<std::string> texts = {
      "xx landingpage42", "xx fromCharCode yy", "123abc456", "substrabc()",
      "nothing", std::string(9000, 'a') + "landingpage7" + std::string(5000, 'b'),
      ""};
  for (const std::string& t : texts) {
    const auto expect = bundle.match(t);
    for (const std::size_t chunk :
         std::vector<std::size_t>{1, 7, 4096, std::max<std::size_t>(t.size(), 1)}) {
      auto stream = bundle.begin_stream();
      for (std::size_t at = 0; at < t.size(); at += chunk) {
        stream.feed(std::string_view(t).substr(at, chunk));
      }
      EXPECT_EQ(stream.finish(), expect) << "chunk " << chunk;
      EXPECT_EQ(stream.normalized(), t);
    }
  }
}

}  // namespace
}  // namespace kizzle::core
