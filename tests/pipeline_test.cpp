#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "kitgen/stream.h"
#include "text/normalize.h"

namespace kizzle::core {
namespace {

// One pipeline + one small simulated day, shared across assertions.
class PipelineIntegration : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.25;

  void SetUp() override {
    kitgen::StreamConfig scfg;
    scfg.volume_scale = kScale;
    sim_ = std::make_unique<kitgen::StreamSimulator>(scfg);

    PipelineConfig pcfg;
    pcfg.partitions = 4;
    pcfg.threads = 4;
    pipeline_ = std::make_unique<KizzlePipeline>(pcfg, 12345);
    for (const auto& [family, payload] : sim_->seed_corpus()) {
      pipeline_->seed_family(std::string(kitgen::family_name(family)), 0.60,
                             payload);
    }
  }

  kitgen::DailyBatch day(int d) { return sim_->generate_day(d); }

  static std::vector<std::string> htmls(const kitgen::DailyBatch& batch) {
    std::vector<std::string> out;
    for (const auto& s : batch.samples) out.push_back(s.html);
    return out;
  }

  std::unique_ptr<kitgen::StreamSimulator> sim_;
  std::unique_ptr<KizzlePipeline> pipeline_;
};

TEST_F(PipelineIntegration, FullDayEndToEnd) {
  const auto batch = day(kitgen::kAug1);
  const DayReport report = pipeline_->process_day(kitgen::kAug1, htmls(batch));

  EXPECT_EQ(report.n_samples, batch.samples.size());
  EXPECT_GT(report.n_clusters, 5u);

  // Every kit present in volume should produce at least one labeled
  // cluster, and labeled clusters should carry signatures.
  std::set<std::string> labeled;
  for (const ClusterReport& cr : report.clusters) {
    if (!cr.label.empty()) labeled.insert(cr.label);
  }
  EXPECT_TRUE(labeled.contains("Nuclear"));
  EXPECT_TRUE(labeled.contains("Angler"));
  EXPECT_TRUE(labeled.contains("Sweet Orange"));
  EXPECT_FALSE(pipeline_->signatures().empty());

  // Labeled clusters must be actual kit samples (no benign leakage in
  // this small run — the engineered confusers are rare at this scale).
  for (const ClusterReport& cr : report.clusters) {
    if (cr.label.empty()) continue;
    std::size_t right = 0;
    for (std::size_t idx : cr.samples) {
      if (std::string(kitgen::truth_name(batch.samples[idx].truth)) ==
          cr.label) {
        ++right;
      }
    }
    EXPECT_GE(right * 10, cr.samples.size() * 9)
        << cr.label << " cluster purity";
  }

  // Signatures must match the samples they were compiled from.
  for (const ClusterReport& cr : report.clusters) {
    if (!cr.issued_signature) continue;
    std::size_t sig_idx = SIZE_MAX;
    for (std::size_t i = 0; i < pipeline_->signatures().size(); ++i) {
      if (pipeline_->signatures()[i].name == cr.signature_name) sig_idx = i;
    }
    ASSERT_NE(sig_idx, SIZE_MAX);
    const auto pattern =
        match::Pattern::compile(pipeline_->signatures()[sig_idx].pattern);
    std::size_t matched = 0;
    for (std::size_t idx : cr.samples) {
      if (pattern.found_in(text::normalize_raw(batch.samples[idx].html))) {
        ++matched;
      }
    }
    EXPECT_GE(matched * 10, cr.samples.size() * 9) << cr.signature_name;
  }
}

TEST_F(PipelineIntegration, UnpackersFireOnKitClusters) {
  const auto batch = day(kitgen::kAug1);
  const DayReport report = pipeline_->process_day(kitgen::kAug1, htmls(batch));
  std::set<std::string> unpackers_used;
  for (const ClusterReport& cr : report.clusters) {
    if (cr.unpacked) unpackers_used.insert(cr.unpacker);
  }
  EXPECT_TRUE(unpackers_used.contains("nuclear"));
  EXPECT_TRUE(unpackers_used.contains("angler"));
  EXPECT_TRUE(unpackers_used.contains("sweet_orange"));
}

TEST_F(PipelineIntegration, SecondDayDoesNotReissueForStableKits) {
  pipeline_->process_day(kitgen::kAug1, htmls(day(kitgen::kAug1)));
  std::size_t nuclear_sigs_day1 = 0;
  for (const auto& s : pipeline_->signatures()) {
    if (s.family == "Nuclear") ++nuclear_sigs_day1;
  }
  pipeline_->process_day(kitgen::kAug1 + 3, htmls(day(kitgen::kAug1 + 3)));
  std::size_t nuclear_sigs_day2 = 0;
  for (const auto& s : pipeline_->signatures()) {
    if (s.family == "Nuclear") ++nuclear_sigs_day2;
  }
  // Nuclear's packer is unchanged Aug 1 -> Aug 4, so at most one extra
  // signature may appear (a one-time adaptation when the first day's
  // cluster happened to contain no AV-evading minor variant and the second
  // day's did). Re-issuing every day would be a regression.
  EXPECT_LE(nuclear_sigs_day2, nuclear_sigs_day1 + 1);
}

TEST_F(PipelineIntegration, ScanAsOfRespectsIssueDay) {
  const auto batch = day(kitgen::kAug1);
  pipeline_->process_day(kitgen::kAug1, htmls(batch));
  ASSERT_FALSE(pipeline_->signatures().empty());
  // Find a malicious sample the full signature set matches.
  for (const auto& s : batch.samples) {
    if (s.truth == kitgen::Truth::Benign) continue;
    const std::string norm = text::normalize_raw(s.html);
    const auto hit = pipeline_->scan(norm);
    if (!hit) continue;
    // Its signature was issued today (kAug1), so scanning "as of
    // yesterday" must miss.
    EXPECT_FALSE(
        pipeline_->scan_as_of(norm, kitgen::kAug1 - 1, true).has_value());
    EXPECT_TRUE(
        pipeline_->scan_as_of(norm, kitgen::kAug1, true).has_value());
    return;
  }
  FAIL() << "no detected malicious sample found";
}

TEST(Pipeline, EmptyDay) {
  KizzlePipeline pipeline(PipelineConfig{}, 1);
  const DayReport report = pipeline.process_day(0, {});
  EXPECT_EQ(report.n_samples, 0u);
  EXPECT_EQ(report.n_clusters, 0u);
}

TEST(Pipeline, UnknownSamplesStayUnlabeled) {
  KizzlePipeline pipeline(PipelineConfig{}, 1);
  pipeline.seed_family("Nuclear", 0.7, "function nk(){return 1}");
  std::vector<std::string> docs;
  for (int i = 0; i < 6; ++i) {
    docs.push_back("<html><script>var q=" + std::to_string(i) +
                   ";function benignthing(a){return a*2}</script></html>");
  }
  const DayReport report = pipeline.process_day(0, docs);
  for (const auto& cr : report.clusters) {
    EXPECT_TRUE(cr.label.empty());
  }
  EXPECT_TRUE(pipeline.signatures().empty());
}

}  // namespace
}  // namespace kizzle::core
