#include <gtest/gtest.h>

#include "av/av_engine.h"
#include "core/hidden.h"
#include "kitgen/kit.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::core {
namespace {

std::string rig_payload(const std::vector<std::string>& urls) {
  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Rig;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
  spec.av_check = true;
  spec.urls = urls;
  return payload_text(spec);
}

std::string nuclear_payload() {
  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Nuclear;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
  spec.av_check = true;
  spec.urls = {"http://nk1.edge-q.ru/gate"};
  return payload_text(spec);
}

TEST(HiddenSignatures, LearnsFromUnpackedPayloads) {
  HiddenSignatureEngine engine;
  const std::vector<std::string> payloads = {
      rig_payload({"http://a.gate-1.biz/x"}),
      rig_payload({"http://b.gate-2.ru/y"}),
  };
  ASSERT_TRUE(engine.learn("RIG", payloads));
  ASSERT_EQ(engine.signatures().size(), 1u);
  EXPECT_EQ(engine.signatures()[0].family, "RIG");
  EXPECT_EQ(engine.signatures()[0].name, "HS.RIG.1");
}

TEST(HiddenSignatures, MatchesInnerText) {
  HiddenSignatureEngine engine;
  const std::vector<std::string> payloads = {
      rig_payload({"http://a.gate-1.biz/x"}),
      rig_payload({"http://b.gate-2.ru/y"}),
  };
  ASSERT_TRUE(engine.learn("RIG", payloads));
  const std::string fresh = rig_payload({"http://c.gate-3.pw/z"});
  const auto hit = engine.scan_inner(text::normalize_js(fresh));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "RIG");
  EXPECT_FALSE(
      engine.scan_inner("function benign(){return document.title}"));
}

TEST(HiddenSignatures, ScanPackedUnpacksFirst) {
  HiddenSignatureEngine engine;
  const std::vector<std::string> payloads = {
      rig_payload({"http://a.gate-1.biz/x"}),
      rig_payload({"http://b.gate-2.ru/y"}),
  };
  ASSERT_TRUE(engine.learn("RIG", payloads));
  Rng rng(5);
  const std::string packed = pack_rig(
      rig_payload({"http://new.gate-9.eu/q"}),
      kitgen::RigPackerState{.delim = "Qz"}, rng);
  const auto hit = engine.scan_packed(packed);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "RIG");
}

TEST(HiddenSignatures, DistinguishesFamilies) {
  HiddenSignatureEngine engine;
  ASSERT_TRUE(engine.learn("RIG", std::vector<std::string>{
                                      rig_payload({"http://a.g-1.biz/x"}),
                                      rig_payload({"http://b.g-2.ru/y"})}));
  ASSERT_TRUE(engine.learn(
      "Nuclear", std::vector<std::string>{nuclear_payload()}));
  Rng rng(6);
  const std::string nk_packed =
      pack_nuclear(nuclear_payload(), kitgen::NuclearPackerState{}, rng);
  const auto hit = engine.scan_packed(nk_packed);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "Nuclear");
}

TEST(HiddenSignatures, UnpackableContentIsClean) {
  HiddenSignatureEngine engine;
  ASSERT_TRUE(engine.learn("RIG", std::vector<std::string>{
                                      rig_payload({"http://a.g-1.biz/x"}),
                                      rig_payload({"http://b.g-2.ru/y"})}));
  EXPECT_FALSE(engine.scan_packed("var x = 1; function f(){return x}"));
}

TEST(HiddenSignatures, EmptyLearnFails) {
  HiddenSignatureEngine engine;
  EXPECT_FALSE(engine.learn("RIG", {}));
  EXPECT_TRUE(engine.signatures().empty());
}

// The §V scenario the extension exists for: the attacker randomizes the
// packer until every *client-side* signature misses — and the hidden
// signature still catches the sample because the inner core is unchanged.
TEST(HiddenSignatures, SurvivesClientSideEvasion) {
  // Client side: the manual AV signature for the current RIG version.
  av::ManualAvEngine client_av;
  client_av.schedule(av::AvRelease{
      0, kitgen::KitFamily::Rig, "RIG.sig1",
      rig_analyst_feature(kitgen::RigPackerState{.delim = "y6"})});

  // Server side: hidden signature learned from the unpacked corpus.
  HiddenSignatureEngine hidden;
  ASSERT_TRUE(hidden.learn("RIG", std::vector<std::string>{
                                      rig_payload({"http://a.g-1.biz/x"}),
                                      rig_payload({"http://b.g-2.ru/y"})}));

  // The attacker's move: a fresh random delimiter every sample (trial-and-
  // error against the client oracle, Fig 1).
  Rng rng(7);
  std::size_t client_caught = 0;
  std::size_t hidden_caught = 0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    kitgen::RigPackerState evaded;
    evaded.delim = rng.string_over("abcdefghjkmnpqrstuvwxyz", 1) +
                   rng.string_over("2345679", 1);
    if (evaded.delim == "y6") continue;
    const std::string packed =
        pack_rig(rig_payload({"http://ev.g-9.pw/k"}), evaded, rng);
    if (client_av.detects(0, text::normalize_raw(packed))) ++client_caught;
    if (hidden.scan_packed(packed) == "RIG") ++hidden_caught;
  }
  EXPECT_EQ(client_caught, 0u);           // the evasion works client-side
  EXPECT_GE(hidden_caught, 19u);          // and fails server-side
}

}  // namespace
}  // namespace kizzle::core
