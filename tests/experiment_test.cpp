#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace kizzle::eval {
namespace {

// A 20-day mini campaign at reduced volume: fast enough for CI, long
// enough to cover the Angler window of vulnerability (8/13-8/19, Fig 6)
// and several packer changes.
ExperimentConfig mini_config() {
  ExperimentConfig cfg;
  cfg.stream.volume_scale = 0.2;
  cfg.stream.start_day = kitgen::kAug1;
  cfg.stream.end_day = kitgen::day_from_date(8, 20);
  cfg.pipeline.partitions = 4;
  cfg.pipeline.threads = 4;
  return cfg;
}

class ExperimentWeek : public ::testing::Test {
 protected:
  static const ExperimentResult& result() {
    static const ExperimentResult r = [] {
      MonthlyExperiment experiment(mini_config());
      return experiment.run();
    }();
    return r;
  }
};

TEST_F(ExperimentWeek, RunsAllDays) {
  EXPECT_EQ(result().days.size(), 20u);
  for (const DayMetrics& m : result().days) {
    EXPECT_GT(m.n_benign, 0u);
    EXPECT_GT(m.n_malicious, 0u);
  }
}

TEST_F(ExperimentWeek, KizzleRatesAreInPaperBallpark) {
  const FamilyTotals sum = result().sum();
  ASSERT_GT(result().total_malicious, 0u);
  const double fn_rate =
      static_cast<double>(sum.kizzle_fn) / result().total_malicious;
  const double fp_rate =
      static_cast<double>(sum.kizzle_fp) / result().total_benign;
  // Paper: FN under 5%, FP under 0.03%. The mini run is noisier; allow
  // generous slack while still requiring the right order of magnitude.
  EXPECT_LT(fn_rate, 0.12);
  EXPECT_LT(fp_rate, 0.005);
}

TEST_F(ExperimentWeek, KizzleBeatsAvOnFalseNegatives) {
  // The window includes Angler's 8/13 evasion; AV pays for six days of it
  // (Fig 6) while Kizzle re-signs the same day.
  const FamilyTotals sum = result().sum();
  EXPECT_LT(sum.kizzle_fn, sum.av_fn);
}

TEST_F(ExperimentWeek, AnglerWindowOfVulnerabilityVisible) {
  const std::size_t ang = kitgen::family_index(kitgen::KitFamily::Angler);
  double peak_av_fn = 0.0;
  for (const DayMetrics& m : result().days) {
    if (m.day < kitgen::day_from_date(8, 14) ||
        m.day > kitgen::day_from_date(8, 18)) {
      continue;
    }
    if (m.family[ang].total == 0) continue;
    peak_av_fn = std::max(
        peak_av_fn, static_cast<double>(m.family[ang].av_fn) /
                        static_cast<double>(m.family[ang].total));
  }
  EXPECT_GT(peak_av_fn, 0.3);
}

TEST_F(ExperimentWeek, SignaturesWereIssued) {
  EXPECT_GE(result().kizzle_signatures.size(), 4u);
  std::set<std::string> families;
  for (const auto& s : result().kizzle_signatures) {
    families.insert(s.family);
  }
  EXPECT_GE(families.size(), 3u);
}

TEST_F(ExperimentWeek, AvReleasesIncludeInitialSet) {
  EXPECT_GE(result().av_releases.size(), 7u);
}

TEST_F(ExperimentWeek, SimilarityTrackedAfterFirstDay) {
  // From day 2 on, kits with labeled clusters report Fig 11 similarity.
  int tracked = 0;
  for (std::size_t d = 1; d < result().days.size(); ++d) {
    for (const auto& fam : result().days[d].family) {
      if (fam.similarity >= 0.0) {
        ++tracked;
        EXPECT_LE(fam.similarity, 1.0);
      }
    }
  }
  EXPECT_GT(tracked, 5);
}

TEST_F(ExperimentWeek, NuclearSimilarityIsHigh) {
  // Fig 11(a): Nuclear's unpacked core barely changes.
  const std::size_t nk =
      kitgen::family_index(kitgen::KitFamily::Nuclear);
  for (std::size_t d = 1; d < result().days.size(); ++d) {
    const double sim = result().days[d].family[nk].similarity;
    if (sim >= 0.0) {
      EXPECT_GT(sim, 0.9);
    }
  }
}

TEST_F(ExperimentWeek, SigLengthsReported) {
  bool any = false;
  for (const auto& m : result().days) {
    for (const auto& fam : m.family) {
      if (fam.sig_length > 0) any = true;
    }
  }
  EXPECT_TRUE(any);
}

TEST_F(ExperimentWeek, GroundTruthAccounting) {
  // Per-family totals must sum to the malicious total.
  const FamilyTotals sum = result().sum();
  EXPECT_EQ(sum.ground_truth, result().total_malicious);
}

TEST(Experiment, DayMetricsRates) {
  DayMetrics m;
  m.n_benign = 1000;
  m.n_malicious = 50;
  m.kizzle_fp = 1;
  m.kizzle_fn = 2;
  EXPECT_DOUBLE_EQ(m.kizzle_fp_rate(), 0.001);
  EXPECT_DOUBLE_EQ(m.kizzle_fn_rate(), 0.04);
  DayMetrics empty;
  EXPECT_DOUBLE_EQ(empty.kizzle_fp_rate(), 0.0);
}

TEST(Experiment, ThresholdLookup) {
  ExperimentConfig cfg;
  EXPECT_DOUBLE_EQ(family_threshold(cfg, kitgen::KitFamily::Rig),
                   cfg.threshold_rig);
  EXPECT_DOUBLE_EQ(family_threshold(cfg, kitgen::KitFamily::Nuclear),
                   cfg.threshold_nuclear);
}

}  // namespace
}  // namespace kizzle::eval
