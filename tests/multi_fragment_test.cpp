#include <gtest/gtest.h>

#include "kitgen/kit.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "sig/compiler.h"
#include "sig/multi_fragment.h"
#include "support/rng.h"
#include "text/lexer.h"
#include "unpack/unpackers.h"

namespace kizzle::sig {
namespace {

std::vector<std::vector<text::Token>> tokenize_all(
    const std::vector<std::string>& sources) {
  std::vector<std::vector<text::Token>> out;
  for (const auto& s : sources) out.push_back(text::lex(s));
  return out;
}

// A cluster with junk between every real statement: single-window search
// finds only short runs, fragments recover the real structure. The junk
// varies in *shape* (token structure), not just in names — shape-invariant
// junk would survive abstraction and stay common.
std::vector<std::string> junky_cluster(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> sources;
  for (std::size_t s = 0; s < n; ++s) {
    std::string src;
    auto junk = [&] {
      switch (rng.index(4)) {
        case 0:
          src += "var " + rng.identifier(4, 9) + "=" +
                 std::to_string(rng.uniform(1, 9999)) + ";";
          break;
        case 1:
          src += rng.identifier(4, 9) + "=\"" + rng.identifier(3, 12) +
                 "\";";
          break;
        case 2:
          src += "if(" + rng.identifier(3, 6) + "){" +
                 rng.identifier(3, 6) + "()}";
          break;
        default:
          src += "function " + rng.identifier(4, 8) + "(){return " +
                 std::to_string(rng.uniform(1, 99)) + "}";
      }
    };
    junk();
    src += "var " + rng.identifier(3, 6) + "=\"\";";
    junk();
    src += "function " + rng.identifier(4, 8) + "(t){return t+t}";
    junk();
    src += "document.createElement(\"script\");";
    junk();
    src += "document.body.appendChild(el);";
    junk();
    sources.push_back(src);
  }
  return sources;
}

TEST(MultiFragment, ExtractsOrderedFragments) {
  const auto samples = tokenize_all(junky_cluster(12, 11));
  MultiFragmentParams params;
  params.min_fragment_tokens = 4;
  const FragmentSignature sig = compile_multi_fragment(samples, params);
  ASSERT_TRUE(sig.ok) << sig.failure;
  EXPECT_GE(sig.fragments.size(), 2u);
  EXPECT_GE(sig.total_tokens(), params.min_total_tokens);
}

TEST(MultiFragment, MatcherRequiresFragmentsInOrder) {
  const auto samples = tokenize_all(junky_cluster(12, 13));
  MultiFragmentParams params;
  params.min_fragment_tokens = 4;
  params.base.length_slack = 0.25;  // small cluster: widen class bounds
  const FragmentSignature sig = compile_multi_fragment(samples, params);
  ASSERT_TRUE(sig.ok) << sig.failure;
  // Deployment-style tolerant matcher: 3/4 of the fragments must appear.
  FragmentMatcher matcher(sig, 0.75);

  // Fresh samples from the same generator match.
  const auto fresh = junky_cluster(3, 999);
  for (const auto& f : fresh) {
    EXPECT_TRUE(matcher.matches(normalized_token_text(text::lex(f))));
  }
  // Unrelated content does not.
  EXPECT_FALSE(matcher.matches("function completely(){different()}"));
  // A lone suffix fragment is not enough.
  EXPECT_FALSE(matcher.matches("document.body.appendChild(el);"));
}

TEST(MultiFragment, StrictMatcherRequiresEveryFragment) {
  const auto samples = tokenize_all(junky_cluster(12, 17));
  MultiFragmentParams params;
  params.min_fragment_tokens = 4;
  params.base.length_slack = 0.25;
  const FragmentSignature sig = compile_multi_fragment(samples, params);
  ASSERT_TRUE(sig.ok) << sig.failure;
  FragmentMatcher strict(sig, 1.0);
  // The compile cluster itself always passes the strict matcher (that is
  // the verification invariant).
  for (const auto& s : samples) {
    EXPECT_TRUE(strict.matches(normalized_token_text(s)));
  }
}

TEST(MultiFragment, MatcherRejectsBadFraction) {
  FragmentSignature sig;
  EXPECT_THROW(FragmentMatcher(sig, 0.0), std::invalid_argument);
  EXPECT_THROW(FragmentMatcher(sig, 1.5), std::invalid_argument);
}

TEST(MultiFragment, EmptyInput) {
  const FragmentSignature sig = compile_multi_fragment({}, {});
  EXPECT_FALSE(sig.ok);
}

TEST(MultiFragment, RejectsWeakFragmentSets) {
  // Samples sharing almost nothing: whatever fragments exist stay under
  // the total-token floor.
  const std::vector<std::string> sources = {
      "alpha();",
      "alpha();",
  };
  MultiFragmentParams params;
  params.min_total_tokens = 12;
  const FragmentSignature sig =
      compile_multi_fragment(tokenize_all(sources), params);
  EXPECT_FALSE(sig.ok);
}

TEST(MultiFragment, BadBoundsThrow) {
  MultiFragmentParams params;
  params.min_fragment_tokens = 0;
  EXPECT_THROW(compile_multi_fragment(tokenize_all({"a();"}), params),
               std::invalid_argument);
}

// ------------- the §V adversarial scenario, end to end -------------

class AdversarialRig : public ::testing::Test {
 protected:
  static std::vector<std::string> make_cluster(std::size_t n,
                                               std::uint64_t seed) {
    Rng rng(seed);
    kitgen::PayloadSpec spec;
    spec.family = kitgen::KitFamily::Rig;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
    spec.av_check = true;
    spec.urls = {"http://gate1.edge-x.biz/serv"};
    const std::string payload = payload_text(spec);
    std::vector<std::string> sources;
    for (std::size_t s = 0; s < n; ++s) {
      sources.push_back(kitgen::pack_rig_adversarial(
          payload, kitgen::RigPackerState{}, /*junk_density=*/0.95, rng));
    }
    return sources;
  }
};

TEST_F(AdversarialRig, JunkInsertionDegradesSingleWindowSignatures) {
  const auto samples = tokenize_all(make_cluster(10, 42));
  CompilerParams params;  // the paper's defaults: >= 10-token window
  const Signature single = compile_signature(samples, params);
  // Junk caps the common runs: either no window survives or only a short,
  // generic one — a fraction of the 200-token windows normal RIG yields.
  if (single.ok) {
    EXPECT_LT(single.token_length, 40u);
  }
}

TEST_F(AdversarialRig, FragmentSignaturesSurviveJunkInsertion) {
  const auto samples = tokenize_all(make_cluster(10, 43));
  MultiFragmentParams params;
  params.base.length_slack = 0.25;
  const FragmentSignature multi = compile_multi_fragment(samples, params);
  ASSERT_TRUE(multi.ok) << multi.failure;
  EXPECT_GE(multi.fragments.size(), 2u);

  // Fresh adversarial samples (new junk in new positions, new
  // identifiers) still match under the tolerant deployment matcher.
  FragmentMatcher matcher(multi, 0.7);
  const auto fresh = make_cluster(6, 4242);
  std::size_t matched = 0;
  for (const auto& src : fresh) {
    if (matcher.matches(normalized_token_text(text::lex(src)))) ++matched;
  }
  EXPECT_GE(matched, 5u) << "of " << fresh.size();

  // And benign content stays clean even under the tolerant matcher.
  EXPECT_FALSE(matcher.matches(
      "function map(list){var out=[];for(var i=0;i<list.length-1;i++)"
      "{out.push(list[i]*3)}return out.join()}"));
}

TEST_F(AdversarialRig, AdversarialSamplesStillUnpack) {
  // The junk changes the token structure, not the scheme: the standard
  // RIG unpacker must still recover the payload (which is how labeling
  // keeps working, §V: "the inner-most layer is not as easy to change").
  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Rig;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
  spec.av_check = true;
  spec.urls = {"http://gate1.edge-x.biz/serv"};
  const std::string payload = payload_text(spec);
  for (const auto& src : make_cluster(3, 77)) {
    const auto result = unpack::unpack_script(src);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->unpacker, "rig");
    EXPECT_EQ(result->text, payload);
  }
}

}  // namespace
}  // namespace kizzle::sig
