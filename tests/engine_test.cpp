// Unified scan engine tests (the Database/Scratch/event tentpole):
//
//   * differential oracle — engine::scan's event list must be
//     byte-identical to Scanner::scan_brute_force (per-signature search,
//     no shared prefilter) on a kitgen corpus, and first-event semantics
//     must equal the brute-force first match, one-shot and under every
//     chunking of the streamed path;
//   * scratch recycling — a Scratch reused across scans, streams and even
//     databases must produce exactly the events a fresh one does;
//   * zero-allocation steady state — with a warm Scratch, engine::scan
//     performs no heap allocation at all, asserted via a global
//     operator-new hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/sigdb.h"
#include "engine/engine.h"
#include "kitgen/families.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "match/pattern.h"
#include "match/scanner.h"
#include "support/rng.h"
#include "text/normalize.h"

// ------------------------ operator-new hook ------------------------
//
// Global replacement so the zero-allocation assertion observes every heap
// allocation in the process. Counting is off by default; the allocation
// test flips it on around the scan under test (single-threaded, so the
// relaxed atomics are only for the replacement functions' legality).
namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kizzle::engine {
namespace {

// ----------------------------- corpus setup -----------------------------

std::string packed_sample(kitgen::KitFamily family, Rng& rng) {
  kitgen::PayloadSpec spec;
  spec.family = family;
  spec.cves = kitgen::kit_info(family).cves;
  spec.av_check = true;
  spec.urls = {kitgen::make_landing_url(rng)};
  const std::string payload = payload_text(spec);
  if (family == kitgen::KitFamily::Rig) {
    return pack_rig(payload, kitgen::RigPackerState{}, rng);
  }
  return pack_nuclear(payload, kitgen::NuclearPackerState{}, rng);
}

std::vector<std::string> kitgen_corpus() {
  Rng rng(0xE6613E);
  std::vector<std::string> samples;
  for (int i = 0; i < 3; ++i) {
    samples.push_back(text::normalize_raw(
        packed_sample(kitgen::KitFamily::Nuclear, rng)));
    samples.push_back(
        text::normalize_raw(packed_sample(kitgen::KitFamily::Rig, rng)));
  }
  samples.push_back("");                       // empty document
  samples.push_back("no literals here at all");
  return samples;
}

// A database shaped like a deployed signature set: long escaped literal
// chunks cut from the corpus (most from *other* samples than the one
// scanned), plus a classy pattern with no usable literal (fallback path).
std::vector<core::DeployedSignature> corpus_signatures(
    const std::vector<std::string>& corpus) {
  Rng rng(0xC0FFEE);
  std::vector<core::DeployedSignature> sigs;
  std::size_t n = 0;
  for (const std::string& text : corpus) {
    if (text.size() < 96) continue;
    for (int k = 0; k < 4; ++k) {
      const std::size_t len = 24 + rng.index(24);
      const std::size_t at = rng.index(text.size() - len);
      core::DeployedSignature s;
      s.name = "sig" + std::to_string(n);
      s.family = (n % 2 == 0) ? "Nuclear" : "RIG";
      s.pattern =
          match::Pattern::escape(text.substr(at, len)) + "[0-9a-zA-Z]{0,8}";
      sigs.push_back(std::move(s));
      ++n;
    }
  }
  core::DeployedSignature fallback;
  fallback.name = "fallback";
  fallback.family = "none";
  fallback.pattern = "zq[0-9]{3}zq";  // no usable literal chunk
  sigs.push_back(std::move(fallback));
  return sigs;
}

std::vector<MatchEvent> all_events(const Database& db, std::string_view text,
                                   Scratch& scratch) {
  std::vector<MatchEvent> events;
  scan(db, text, scratch, [&events](const MatchEvent& event) {
    events.push_back(event);
    return ScanDecision::Continue;
  });
  return events;
}

void expect_same_events(const std::vector<MatchEvent>& got,
                        const std::vector<MatchEvent>& want,
                        const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sig_index, want[i].sig_index) << label << " event " << i;
    EXPECT_EQ(got[i].begin, want[i].begin) << label << " event " << i;
    EXPECT_EQ(got[i].end, want[i].end) << label << " event " << i;
    EXPECT_EQ(got[i].name, want[i].name) << label << " event " << i;
    EXPECT_EQ(got[i].family, want[i].family) << label << " event " << i;
  }
}

// ------------------------- differential oracle -------------------------

TEST(EngineOracle, ScanEventsEqualBruteForceOnKitgenCorpus) {
  const auto corpus = kitgen_corpus();
  const auto sigs = corpus_signatures(corpus);
  const Database db = Database::compile(sigs);

  // The same signature set in a Scanner, whose scan_brute_force is the
  // prefilter-free per-signature reference.
  match::Scanner oracle;
  for (const auto& s : sigs) {
    oracle.add(s.name, match::Pattern::compile(s.pattern));
  }

  Scratch scratch;
  for (const std::string& text : corpus) {
    const auto brute = oracle.scan_brute_force(text);
    const auto events = all_events(db, text, scratch);
    ASSERT_EQ(events.size(), brute.size()) << "text size " << text.size();
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].sig_index, brute[i].signature_index);
      EXPECT_EQ(events[i].begin, brute[i].begin);
      EXPECT_EQ(events[i].end, brute[i].end);
      EXPECT_EQ(events[i].name, sigs[brute[i].signature_index].name);
      EXPECT_EQ(events[i].family, sigs[brute[i].signature_index].family);
    }
    // First-event semantics == brute-force first match.
    const auto first = first_match(db, text, scratch);
    if (brute.empty()) {
      EXPECT_FALSE(first.has_value());
    } else {
      ASSERT_TRUE(first.has_value());
      EXPECT_EQ(first->sig_index, brute[0].signature_index);
    }
  }
}

TEST(EngineOracle, StreamedEventsEqualOneShotForEveryChunking) {
  const auto corpus = kitgen_corpus();
  const Database db = Database::compile(corpus_signatures(corpus));
  Scratch oneshot_scratch;
  Scratch stream_scratch;
  for (const std::string& text : corpus) {
    const auto expect = all_events(db, text, oneshot_scratch);
    std::vector<std::size_t> chunks = {1, 7, 4096,
                                       std::max<std::size_t>(text.size(), 1)};
    for (const std::size_t chunk : chunks) {
      Stream stream = open_stream(db, stream_scratch);
      for (std::size_t at = 0; at < text.size(); at += chunk) {
        stream.feed(std::string_view(text).substr(at, chunk));
      }
      std::vector<MatchEvent> events;
      stream.finish([&events](const MatchEvent& event) {
        events.push_back(event);
        return ScanDecision::Continue;
      });
      expect_same_events(events, expect, "chunked");
      EXPECT_EQ(stream.bytes_fed(), text.size());
      EXPECT_EQ(stream.text(), text);
    }
  }
}

TEST(EngineOracle, EverySplitPositionOfOneSampleMatchesOneShot) {
  const auto corpus = kitgen_corpus();
  const Database db = Database::compile(corpus_signatures(corpus));
  // The shortest real sample keeps the n^1 split sweep affordable.
  const std::string* text = nullptr;
  for (const auto& t : corpus) {
    if (t.size() >= 96 && (text == nullptr || t.size() < text->size())) {
      text = &t;
    }
  }
  ASSERT_NE(text, nullptr);
  Scratch scratch;
  const auto expect = all_events(db, *text, scratch);
  ASSERT_FALSE(expect.empty());  // the corpus signatures hit their donors
  for (std::size_t split = 0; split <= text->size();
       split += 1 + split / 64) {  // dense at the front, sparser later
    Stream stream = open_stream(db, scratch);
    stream.feed(std::string_view(*text).substr(0, split));
    stream.feed(std::string_view(*text).substr(split));
    std::vector<MatchEvent> events;
    stream.finish([&events](const MatchEvent& event) {
      events.push_back(event);
      return ScanDecision::Continue;
    });
    expect_same_events(events, expect, "split");
  }
}

// Pre-redesign SignatureBundle::match semantics: first confirmed candidate
// in ascending index order. The engine must agree with a from-artifact
// database as well (release automaton, no per-process rebuild).
TEST(EngineOracle, ArtifactDatabaseAgreesWithCompiledDatabase) {
  const auto corpus = kitgen_corpus();
  const auto sigs = corpus_signatures(corpus);
  const Database compiled = Database::compile(sigs);
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  core::save_artifact(blob, sigs);
  const Database loaded = Database::from_artifact(blob);
  ASSERT_EQ(loaded.size(), compiled.size());
  Scratch scratch;
  for (const std::string& text : corpus) {
    expect_same_events(all_events(loaded, text, scratch),
                       all_events(compiled, text, scratch), "artifact");
  }
}

TEST(EngineScan, CandidateFilterSkipsConfirmation) {
  const auto corpus = kitgen_corpus();
  const auto sigs = corpus_signatures(corpus);
  const Database db = Database::compile(sigs);
  Scratch scratch;
  for (const std::string& text : corpus) {
    const auto expect = all_events(db, text, scratch);
    // Only even signature indices may confirm.
    std::vector<MatchEvent> events;
    scan(
        db, text, scratch, [](std::size_t i) { return i % 2 == 0; },
        [&events](const MatchEvent& event) {
          events.push_back(event);
          return ScanDecision::Continue;
        });
    std::vector<MatchEvent> want;
    for (const MatchEvent& e : expect) {
      if (e.sig_index % 2 == 0) want.push_back(e);
    }
    expect_same_events(events, want, "filtered");
  }
}

TEST(EngineScan, EmptyDatabaseDeliversNothing) {
  const Database db;
  Scratch scratch;
  EXPECT_EQ(db.size(), 0u);
  const auto outcome =
      scan(db, "anything", scratch,
           [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(outcome.events, 0u);
  EXPECT_FALSE(first_match(db, "anything", scratch).has_value());
}

TEST(EngineScan, StopHaltsDelivery) {
  const auto corpus = kitgen_corpus();
  const Database db = Database::compile(corpus_signatures(corpus));
  Scratch scratch;
  for (const std::string& text : corpus) {
    const auto expect = all_events(db, text, scratch);
    if (expect.size() < 2) continue;
    std::size_t delivered = 0;
    const auto outcome = scan(db, text, scratch,
                              [&delivered](const MatchEvent&) {
                                ++delivered;
                                return ScanDecision::Stop;
                              });
    EXPECT_EQ(delivered, 1u);
    EXPECT_EQ(outcome.events, 1u);
    EXPECT_TRUE(outcome.stopped);
    return;  // one multi-event sample suffices
  }
  FAIL() << "corpus produced no multi-event sample";
}

// ------------------------------ scan stats ------------------------------

TEST(EngineScan, ScanStatsReportTierSplitAndPrefilterCounters) {
  const Database db = Database::compile(std::vector<Database::Spec>{
      {"lit", "fam", "needleone"},                // pure literal tier
      {"dom", "fam", "needletwo[0-9]{0,4}"},      // compiled confirm program
      {"rex", "fam", "needlethree|zzzalternate"}, // VM tier, no usable literal
  });
  ASSERT_EQ(db.pattern(0).confirm_tier(), match::ConfirmTier::kLiteral);
  ASSERT_EQ(db.pattern(1).confirm_tier(),
            match::ConfirmTier::kLiteralDominated);
  ASSERT_EQ(db.pattern(2).confirm_tier(), match::ConfirmTier::kRegex);

  Scratch scratch;
  const std::string text = "xx needleone yy needletwo77 zz needlethree";
  const auto outcome = scan(db, text, scratch, [](const MatchEvent&) {
    return ScanDecision::Continue;
  });
  EXPECT_EQ(outcome.events, 3u);
  const ScanStats& st = scratch.stats();
  EXPECT_EQ(st.prefilter.fallback, match::PrefilterFallback::kNone);
  EXPECT_GT(st.prefilter.first_stage_hits, 0u);
  EXPECT_GT(st.prefilter.shards_scanned, 0u);
  EXPECT_EQ(st.prefilter.literal_survivors, 2u);  // the no-literal
  EXPECT_EQ(st.candidates, 3u);                   // alternation merges in
  EXPECT_EQ(st.confirmed_literal, 1u);
  EXPECT_EQ(st.confirmed_literal_dominated, 1u);
  EXPECT_EQ(st.confirmed_vm, 1u);

  // Stats are per scan, not accumulated: a miss-everything scan overwrites.
  (void)scan(db, "nothing relevant", scratch,
             [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(scratch.stats().candidates, 1u);  // only the unconditional sig
  EXPECT_EQ(scratch.stats().confirmed_vm, 1u);
  EXPECT_EQ(scratch.stats().confirmed_literal, 0u);

  // confirm() fills the candidate/tier counters but zeroes the prefilter
  // slice: its candidate list arrived from outside the call.
  const std::vector<std::size_t> candidates = {0, 1, 2};
  (void)confirm(db, candidates, text, scratch,
                [](const MatchEvent&) { return ScanDecision::Continue; });
  EXPECT_EQ(scratch.stats().prefilter.first_stage_hits, 0u);
  EXPECT_EQ(scratch.stats().prefilter.literal_survivors, 0u);
  EXPECT_EQ(scratch.stats().candidates, 3u);
  EXPECT_EQ(scratch.stats().confirmed_literal, 1u);
  EXPECT_EQ(scratch.stats().confirmed_literal_dominated, 1u);
  EXPECT_EQ(scratch.stats().confirmed_vm, 1u);
}

// --------------------------- scratch recycling ---------------------------

TEST(EngineScratch, RecycledScratchEqualsFreshScratch) {
  const auto corpus = kitgen_corpus();
  const auto sigs = corpus_signatures(corpus);
  const Database db = Database::compile(sigs);
  // A second, smaller database: recycling must survive rebinding the
  // scratch across databases of different shapes.
  const Database small = Database::compile(
      std::vector<core::DeployedSignature>(sigs.begin(), sigs.begin() + 2));

  Scratch recycled;
  // Warm it up in every mode, across both databases.
  for (const std::string& text : corpus) {
    (void)all_events(db, text, recycled);
    (void)all_events(small, text, recycled);
    Stream stream = open_stream(db, recycled);
    stream.feed(text);
    (void)stream.finish_first();
  }

  for (const std::string& text : corpus) {
    Scratch fresh;
    expect_same_events(all_events(db, text, recycled),
                       all_events(db, text, fresh), "one-shot");

    Scratch fresh2;
    Stream recycled_stream = open_stream(db, recycled);
    Stream fresh_stream = open_stream(db, fresh2);
    for (std::size_t at = 0; at < text.size(); at += 7) {
      recycled_stream.feed(std::string_view(text).substr(at, 7));
      fresh_stream.feed(std::string_view(text).substr(at, 7));
    }
    std::vector<MatchEvent> recycled_events;
    recycled_stream.finish([&recycled_events](const MatchEvent& event) {
      recycled_events.push_back(event);
      return ScanDecision::Continue;
    });
    std::vector<MatchEvent> fresh_events;
    fresh_stream.finish([&fresh_events](const MatchEvent& event) {
      fresh_events.push_back(event);
      return ScanDecision::Continue;
    });
    expect_same_events(recycled_events, fresh_events, "stream");
  }
}

// ------------------------- zero-allocation claim -------------------------

TEST(EngineScratch, SteadyStateScanPerformsZeroHeapAllocations) {
  const auto corpus = kitgen_corpus();
  const Database db = Database::compile(corpus_signatures(corpus));
  Scratch scratch;
  std::size_t warm_events = 0;
  // Warm-up: size every recycled buffer (candidate vector, VM slots/undo/
  // stack high-water, the prefilter's per-thread bitmaps) to this corpus.
  for (int round = 0; round < 2; ++round) {
    warm_events = 0;
    for (const std::string& text : corpus) {
      const auto outcome =
          scan(db, text, scratch,
               [](const MatchEvent&) { return ScanDecision::Continue; });
      warm_events += outcome.events;
    }
  }
  ASSERT_GT(warm_events, 0u);  // the claim must cover real confirmations

  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  std::size_t hot_events = 0;
  for (const std::string& text : corpus) {
    const auto outcome =
        scan(db, text, scratch,
             [](const MatchEvent&) { return ScanDecision::Continue; });
    hot_events += outcome.events;
  }
  g_count_allocations.store(false, std::memory_order_relaxed);

  EXPECT_EQ(hot_events, warm_events);
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), 0u)
      << "steady-state engine::scan touched the heap";
}

}  // namespace
}  // namespace kizzle::engine
