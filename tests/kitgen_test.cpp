#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "kitgen/benign.h"
#include "kitgen/families.h"
#include "kitgen/kit.h"
#include "kitgen/payload.h"
#include "kitgen/stream.h"
#include "kitgen/timeline.h"
#include "text/html.h"
#include "text/lexer.h"
#include "text/normalize.h"

namespace kizzle::kitgen {
namespace {

// ------------------------------ Fig 2 ------------------------------

TEST(Catalog, HasAllFourKits) {
  EXPECT_EQ(kit_catalog().size(), 4u);
  for (std::size_t i = 0; i < kNumFamilies; ++i) {
    EXPECT_NO_THROW(kit_info(family_from_index(i)));
  }
}

TEST(Catalog, Fig2Rows) {
  // Spot-check the Fig 2 contents.
  const KitInfo& angler = kit_info(KitFamily::Angler);
  EXPECT_TRUE(angler.av_check);
  EXPECT_EQ(angler.cves.size(), 5u);
  const KitInfo& so = kit_info(KitFamily::SweetOrange);
  EXPECT_FALSE(so.av_check);
  const KitInfo& nuclear = kit_info(KitFamily::Nuclear);
  bool has_reader = false;
  for (const CveEntry& c : nuclear.cves) {
    if (c.target == PluginTarget::AdobeReader) {
      has_reader = true;
      EXPECT_EQ(c.cve, "2010-0188");  // the 2010 CVE the paper highlights
    }
  }
  EXPECT_TRUE(has_reader);
}

TEST(Catalog, SharedIeCve) {
  // All four kits carry CVE-2013-2551 (Fig 2).
  for (const KitInfo& kit : kit_catalog()) {
    bool found = false;
    for (const CveEntry& c : kit.cves) {
      if (c.cve == "2013-2551") found = true;
    }
    EXPECT_TRUE(found) << family_name(kit.family);
  }
}

// ----------------------------- timeline -----------------------------

TEST(Timeline, DateConversions) {
  EXPECT_EQ(day_from_date(6, 1), 0);
  EXPECT_EQ(day_from_date(8, 1), kAug1);
  EXPECT_EQ(day_from_date(8, 31), kAug31);
  EXPECT_EQ(date_label(kAug1), "8/1");
  EXPECT_EQ(date_label(day_from_date(7, 15)), "7/15");
  EXPECT_THROW(day_from_date(9, 1), std::invalid_argument);
}

TEST(Timeline, Fig5HasThirteenSuperficialPackerChanges) {
  std::size_t packer = 0;
  std::size_t semantic = 0;
  std::size_t payload = 0;
  for (const KitEvent& e : nuclear_fig5_timeline()) {
    switch (e.kind) {
      case EventKind::PackerChange: ++packer; break;
      case EventKind::SemanticChange: ++semantic; break;
      default: ++payload;
    }
  }
  // Paper §II.B: 13 small syntactic changes, one semantic change, and two
  // payload changes over the three months.
  EXPECT_EQ(packer, 13u);
  EXPECT_EQ(semantic, 1u);
  EXPECT_EQ(payload, 2u);
}

TEST(Timeline, Fig5IsChronological) {
  const auto& t = nuclear_fig5_timeline();
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i - 1].day, t[i].day);
  }
}

TEST(Timeline, AugustScheduleCoversAllFamilies) {
  bool seen[kNumFamilies] = {};
  for (const KitEvent& e : august_schedule()) {
    EXPECT_GE(e.day, kAug1);
    EXPECT_LE(e.day, kAug31);
    seen[family_index(e.family)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Timeline, AnglerChangeIsOnAugust13) {
  bool found = false;
  for (const KitEvent& e : august_schedule()) {
    if (e.family == KitFamily::Angler &&
        e.kind == EventKind::SemanticChange) {
      EXPECT_EQ(e.day, day_from_date(8, 13));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ----------------------------- payload -----------------------------

TEST(Payload, AvCheckTextIsSharedVerbatim) {
  // §II.B code borrowing: one canonical text.
  PayloadSpec rig;
  rig.family = KitFamily::Rig;
  rig.cves = kit_info(KitFamily::Rig).cves;
  rig.av_check = true;
  rig.urls = {"http://a.b.c/d"};
  PayloadSpec angler = rig;
  angler.family = KitFamily::Angler;
  angler.cves = kit_info(KitFamily::Angler).cves;
  const std::string rig_text = payload_text(rig);
  const std::string angler_text = payload_text(angler);
  const std::string shared = av_check_text();
  EXPECT_NE(rig_text.find(shared), std::string::npos);
  EXPECT_NE(angler_text.find(shared), std::string::npos);
}

TEST(Payload, SweetOrangeHasNoAvCheck) {
  PayloadSpec so;
  so.family = KitFamily::SweetOrange;
  so.cves = kit_info(KitFamily::SweetOrange).cves;
  so.av_check = false;
  so.urls = {"http://a.b.c/d"};
  EXPECT_EQ(payload_text(so).find(av_check_text()), std::string::npos);
}

TEST(Payload, NuclearEmbedsPluginDetectCore) {
  // The Fig 15 overlap mechanism.
  PayloadSpec nk;
  nk.family = KitFamily::Nuclear;
  nk.cves = kit_info(KitFamily::Nuclear).cves;
  nk.av_check = true;
  nk.urls = {"http://a.b.c/d"};
  EXPECT_NE(payload_text(nk).find(plugin_detector_core_text()),
            std::string::npos);
}

TEST(Payload, OneStubPerCve) {
  PayloadSpec nk;
  nk.family = KitFamily::Nuclear;
  nk.cves = kit_info(KitFamily::Nuclear).cves;
  nk.av_check = true;
  nk.urls = {"http://a.b.c/d"};
  const std::string text = payload_text(nk);
  for (const CveEntry& c : nk.cves) {
    std::string id;
    for (char ch : c.cve) {
      if (isalnum(static_cast<unsigned char>(ch))) id.push_back(ch);
      if (ch == '-') id.push_back('_');
    }
    EXPECT_NE(text.find(id), std::string::npos) << c.cve;
  }
}

TEST(Payload, MarkerEmbeddingIsConditional) {
  PayloadSpec ang;
  ang.family = KitFamily::Angler;
  ang.cves = kit_info(KitFamily::Angler).cves;
  ang.av_check = true;
  ang.urls = {"http://a.b.c/d"};
  ang.java_marker = "jvmqx1r7a";
  ang.embed_java_marker = false;
  EXPECT_EQ(payload_text(ang).find("jvmqx1r7a"), std::string::npos);
  ang.embed_java_marker = true;
  EXPECT_NE(payload_text(ang).find("jvmqx1r7a"), std::string::npos);
}

TEST(Payload, DeterministicForSameSpec) {
  PayloadSpec spec;
  spec.family = KitFamily::Rig;
  spec.cves = kit_info(KitFamily::Rig).cves;
  spec.av_check = true;
  spec.urls = {"http://a.b.c/d"};
  EXPECT_EQ(payload_text(spec), payload_text(spec));
}

TEST(Payload, RequiresUrl) {
  PayloadSpec spec;
  spec.family = KitFamily::Rig;
  EXPECT_THROW(payload_text(spec), std::invalid_argument);
}

TEST(Payload, PayloadLexesCleanly) {
  for (const KitInfo& kit : kit_catalog()) {
    PayloadSpec spec;
    spec.family = kit.family;
    spec.cves = kit.cves;
    spec.av_check = kit.av_check;
    spec.urls = {"http://a.b.c/d", "http://e.f.g/h"};
    const std::string text = payload_text(spec);
    const auto tokens = text::lex(text, text::LexOptions{.tolerant = false});
    EXPECT_GT(tokens.size(), 200u) << family_name(kit.family);
  }
}

// ---------------------------- generators ----------------------------

TEST(Generators, DeterministicAcrossRuns) {
  auto g1 = make_kit_generator(KitFamily::Nuclear, 42);
  auto g2 = make_kit_generator(KitFamily::Nuclear, 42);
  g1->begin_day(kAug1);
  g2->begin_day(kAug1);
  Rng r1(7);
  Rng r2(7);
  EXPECT_EQ(g1->sample_html(r1), g2->sample_html(r2));
}

TEST(Generators, FeatureChangesOnPackerEvent) {
  auto gen = make_kit_generator(KitFamily::Rig, 1);
  gen->begin_day(kAug1);
  const std::string before = gen->analyst_feature();
  gen->begin_day(day_from_date(8, 5));  // RIG delimiter change
  const std::string after = gen->analyst_feature();
  EXPECT_NE(before, after);
}

TEST(Generators, VersionIdAdvances) {
  auto gen = make_kit_generator(KitFamily::Nuclear, 1);
  gen->begin_day(kAug1);
  const int v0 = gen->version_id();
  gen->begin_day(day_from_date(8, 18));  // past the 8/12 and 8/17 events
  EXPECT_GT(gen->version_id(), v0);
}

TEST(Generators, SampleContainsFeature) {
  // Most samples (1 - minor_variant_p) carry the analyst feature in
  // AV-normalized form.
  auto gen = make_kit_generator(KitFamily::SweetOrange, 5);
  gen->begin_day(kAug1);
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string html = gen->sample_html(rng);
    const std::string norm = text::normalize_raw(html);
    if (norm.find(gen->analyst_feature()) != std::string::npos) ++hits;
  }
  EXPECT_GE(hits, 24);  // ~95% expected
  EXPECT_LE(hits, 30);
}

TEST(Generators, AnglerMarkerMovesOnAug13) {
  auto gen = make_kit_generator(KitFamily::Angler, 9);
  gen->begin_day(kAug1);
  Rng rng(13);
  // Pre-8/13: marker in clear HTML (an applet tag).
  const std::string pre = gen->sample_html(rng);
  EXPECT_NE(pre.find("applet"), std::string::npos);
  EXPECT_NE(pre.find("jvmqx1r7a"), std::string::npos);
  // Well after 8/13 (full adoption is capped at 55%; sample until we see a
  // new-version sample).
  gen->begin_day(day_from_date(8, 20));
  bool saw_new_version = false;
  for (int i = 0; i < 50 && !saw_new_version; ++i) {
    const std::string post = gen->sample_html(rng);
    if (post.find("applet") == std::string::npos) {
      saw_new_version = true;
      // Marker no longer in the clear; it hides inside the packed body.
      EXPECT_EQ(post.find("jvmqx1r7a"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_new_version);
}

TEST(Generators, RigUrlsChurnDaily) {
  auto gen = make_kit_generator(KitFamily::Rig, 3);
  gen->begin_day(kAug1);
  const std::string day1 = gen->unpacked_payload();
  gen->begin_day(kAug1 + 1);
  const std::string day2 = gen->unpacked_payload();
  EXPECT_NE(day1, day2);  // embedded URLs rotated
}

TEST(Generators, NuclearPayloadStableWithinAugustUntilCveAppend) {
  auto gen = make_kit_generator(KitFamily::Nuclear, 3);
  gen->begin_day(kAug1);
  const std::string early = gen->unpacked_payload();
  gen->begin_day(day_from_date(8, 20));
  EXPECT_EQ(early, gen->unpacked_payload());
  gen->begin_day(day_from_date(8, 28));  // past the 8/27 CVE append
  const std::string late = gen->unpacked_payload();
  EXPECT_NE(early, late);
  EXPECT_LT(early.size(), late.size());  // append, not replace
}

TEST(Generators, BeginDayRejectsDescendingDays) {
  auto gen = make_kit_generator(KitFamily::Rig, 3);
  gen->begin_day(kAug1 + 5);
  EXPECT_THROW(gen->begin_day(kAug1), std::invalid_argument);
}

// ------------------------------ benign ------------------------------

TEST(Benign, FamilyScriptsAreDeterministic) {
  BenignCorpus a(99);
  BenignCorpus b(99);
  EXPECT_EQ(a.family_script(7, kAug1), b.family_script(7, kAug1));
}

TEST(Benign, FamiliesDiffer) {
  BenignCorpus corpus(99);
  EXPECT_NE(corpus.family_script(1, kAug1), corpus.family_script(2, kAug1));
}

TEST(Benign, FamilyStableDayOverDay) {
  BenignCorpus corpus(99);
  // Most days the family body is identical (version drift is slow).
  EXPECT_EQ(corpus.family_script(5, kAug1), corpus.family_script(5, kAug1 + 1));
}

TEST(Benign, AdloaderEmbedsRigProber) {
  BenignCorpus corpus(99);
  const std::string script = corpus.adloader_script(kAug1);
  EXPECT_NE(script.find("rg_probe"), std::string::npos);
}

TEST(Benign, PlugindetectSharesCoreWithNuclear) {
  BenignCorpus corpus(99);
  const std::string script = corpus.plugindetect_script(kAug1);
  EXPECT_NE(script.find("isPlainObject"), std::string::npos);
  EXPECT_NE(script.find("PluginDetect"), std::string::npos);
}

TEST(Benign, ScriptsLex) {
  BenignCorpus corpus(42);
  for (std::size_t f = 0; f < 30; ++f) {
    const std::string script = corpus.family_script(f, kAug1);
    EXPECT_NO_THROW(text::lex(script, text::LexOptions{.tolerant = false}))
        << "family " << f;
  }
}

// ------------------------------ stream ------------------------------

TEST(Stream, WeekendDetection) {
  EXPECT_FALSE(is_weekend(day_from_date(8, 1)));  // Friday
  EXPECT_TRUE(is_weekend(day_from_date(8, 2)));   // Saturday
  EXPECT_TRUE(is_weekend(day_from_date(8, 3)));   // Sunday
  EXPECT_FALSE(is_weekend(day_from_date(8, 4)));  // Monday
  EXPECT_TRUE(is_weekend(day_from_date(8, 9)));   // Saturday
}

TEST(Stream, GeneratesLabeledBatch) {
  StreamConfig cfg;
  cfg.volume_scale = 0.1;  // keep the test fast
  StreamSimulator sim(cfg);
  const DailyBatch batch = sim.generate_day(kAug1);
  EXPECT_EQ(batch.day, kAug1);
  EXPECT_GT(batch.benign_count, 0u);
  EXPECT_GT(batch.malicious_count, 0u);
  EXPECT_EQ(batch.samples.size(), batch.benign_count + batch.malicious_count);
  // Sample ids are unique.
  std::set<std::string> ids;
  for (const Sample& s : batch.samples) ids.insert(s.id);
  EXPECT_EQ(ids.size(), batch.samples.size());
}

TEST(Stream, DeterministicAcrossRuns) {
  StreamConfig cfg;
  cfg.volume_scale = 0.05;
  StreamSimulator a(cfg);
  StreamSimulator b(cfg);
  const DailyBatch ba = a.generate_day(kAug1);
  const DailyBatch bb = b.generate_day(kAug1);
  ASSERT_EQ(ba.samples.size(), bb.samples.size());
  for (std::size_t i = 0; i < ba.samples.size(); ++i) {
    EXPECT_EQ(ba.samples[i].html, bb.samples[i].html);
    EXPECT_EQ(ba.samples[i].truth, bb.samples[i].truth);
  }
}

TEST(Stream, SeedCorpusHasAllFamilies) {
  StreamSimulator sim(StreamConfig{});
  const auto& seeds = sim.seed_corpus();
  EXPECT_EQ(seeds.size(), kNumFamilies);
  for (const auto& [family, payload] : seeds) {
    EXPECT_GT(payload.size(), 500u) << family_name(family);
  }
}

TEST(Stream, VolumeOrderingMatchesFig14) {
  StreamConfig cfg;
  cfg.volume_scale = 0.5;
  StreamSimulator sim(cfg);
  std::size_t per_family[kNumFamilies] = {};
  for (int day = kAug1; day <= kAug1 + 6; ++day) {
    const DailyBatch batch = sim.generate_day(day);
    for (const Sample& s : batch.samples) {
      switch (s.truth) {
        case Truth::Nuclear: ++per_family[0]; break;
        case Truth::SweetOrange: ++per_family[1]; break;
        case Truth::Angler: ++per_family[2]; break;
        case Truth::Rig: ++per_family[3]; break;
        default: break;
      }
    }
  }
  // Angler > Sweet Orange > Nuclear > RIG (Fig 14 ground-truth ordering).
  EXPECT_GT(per_family[2], per_family[1]);
  EXPECT_GT(per_family[1], per_family[0]);
  EXPECT_GT(per_family[0], per_family[3]);
}

TEST(Stream, RejectsOutOfRangeAndDescendingDays) {
  StreamConfig cfg;
  cfg.volume_scale = 0.05;
  StreamSimulator sim(cfg);
  EXPECT_THROW(sim.generate_day(kAug1 - 1), std::invalid_argument);
  sim.generate_day(kAug1 + 1);
  EXPECT_THROW(sim.generate_day(kAug1 + 1), std::invalid_argument);
}

TEST(Stream, MaliciousSamplesAreFullDocuments) {
  StreamConfig cfg;
  cfg.volume_scale = 0.2;
  StreamSimulator sim(cfg);
  const DailyBatch batch = sim.generate_day(kAug1);
  for (const Sample& s : batch.samples) {
    if (s.truth != Truth::Benign && !s.corrupted) {
      EXPECT_FALSE(text::extract_scripts(s.html).empty()) << s.id;
    }
  }
}

TEST(Html, WrapHtmlProducesExtractableScript) {
  Rng rng(1);
  const std::string doc = wrap_html("", "var x=1;", rng);
  EXPECT_EQ(text::inline_script_text(doc), "\nvar x=1;");
}

}  // namespace
}  // namespace kizzle::kitgen
