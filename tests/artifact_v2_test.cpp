// Zero-copy artifact layer tests (core/sigdb.h, engine/engine.h,
// serve/server.h): the version-2 bundle through every load path — istream
// copy-in, borrowed std::span views, and an mmap'd file whose lifetime the
// database must manage — plus KZDELTA delta artifacts end to end: save /
// load / apply / retire, lineage-fingerprint enforcement, the serve
// deploy_delta gate, and the watcher's partial-write debounce. The
// differential oracles (mmap vs istream over a kitgen corpus, pinned
// stream across an epoch swap) are the ones that only bite under ASan:
// a dangling table view has no crash signature in a plain build.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/deploy.h"
#include "core/pipeline.h"
#include "core/sigdb.h"
#include "engine/engine.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "support/errors.h"
#include "support/mapped_file.h"

namespace kizzle {
namespace {

// One pipeline-built fixture per process (a real kitgen day: corpus docs,
// the deployed database, artifact bytes for the swap paths).
const serve::ServeFixture& fixture() {
  static const serve::ServeFixture fx = [] {
    serve::FixtureConfig cfg;
    cfg.max_docs = 64;
    return serve::make_fixture(cfg);
  }();
  return fx;
}

std::string write_temp(const std::string& bytes, const std::string& tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("kizzle_artifact_v2_" + tag + "_" + std::to_string(::getpid())))
          .string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  return path;
}

void expect_same_signatures(const std::vector<core::DeployedSignature>& a,
                            const std::vector<core::DeployedSignature>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_EQ(a[i].issued_day, b[i].issued_day);
    EXPECT_EQ(a[i].pattern, b[i].pattern);
    EXPECT_EQ(a[i].token_length, b[i].token_length);
  }
}

// ------------------------- bundle v2 load paths -------------------------

TEST(ArtifactV2, IstreamRoundTripPreservesSignatures) {
  const serve::ServeFixture& fx = fixture();
  std::istringstream is(fx.artifact);
  std::vector<core::DeployedSignature> loaded;
  const engine::Database db = engine::Database::from_artifact(is, &loaded);
  expect_same_signatures(loaded, fx.signatures);
  EXPECT_EQ(db.size(), fx.signatures.size());
  EXPECT_EQ(db.fingerprint(), fx.database->fingerprint());
}

TEST(ArtifactV2, SpanLoadBorrowsTablesWhenAligned) {
  const serve::ServeFixture& fx = fixture();
  // A 64-byte-aligned copy of the artifact: the prefilter tables must be
  // views into it, not owned copies. One byte of skew must demote the
  // load to owned copies with identical results.
  std::vector<std::byte> raw(fx.artifact.size() + 64);
  auto aligned = reinterpret_cast<std::byte*>(
      (reinterpret_cast<std::uintptr_t>(raw.data()) + 63) & ~std::uintptr_t{63});
  std::memcpy(aligned, fx.artifact.data(), fx.artifact.size());
  const core::BundleArtifact borrowed =
      core::load_artifact({aligned, fx.artifact.size()});
  EXPECT_TRUE(borrowed.prefilter.zero_copy());
  expect_same_signatures(borrowed.signatures, fx.signatures);

  std::vector<std::byte> skewed_buf(fx.artifact.size() + 65);
  std::byte* skewed = reinterpret_cast<std::byte*>(
      ((reinterpret_cast<std::uintptr_t>(skewed_buf.data()) + 63) &
       ~std::uintptr_t{63})) + 1;
  std::memcpy(skewed, fx.artifact.data(), fx.artifact.size());
  const core::BundleArtifact owned =
      core::load_artifact({skewed, fx.artifact.size()});
  EXPECT_FALSE(owned.prefilter.zero_copy());
  expect_same_signatures(owned.signatures, fx.signatures);
}

// The load-path differential oracle: over a full kitgen corpus, a
// database loaded through the mmap zero-copy path must produce verdicts
// byte-identical to the istream copy-in path.
TEST(ArtifactV2, MmapVsIstreamVerdictsAgreeOnKitgenCorpus) {
  const serve::ServeFixture& fx = fixture();
  const std::string path = write_temp(fx.artifact, "oracle");

  auto mapping = std::make_shared<const support::MappedFile>(
      support::MappedFile::open(path));
  const engine::Database mmap_db =
      engine::Database::from_artifact(mapping);
  std::istringstream is(fx.artifact);
  const engine::Database stream_db = engine::Database::from_artifact(is);
  EXPECT_EQ(mmap_db.fingerprint(), stream_db.fingerprint());

  engine::Scratch s1, s2;
  std::size_t matched = 0;
  for (const serve::CorpusDoc& doc : fx.docs) {
    const auto a = engine::first_match(mmap_db, doc.text, s1);
    const auto b = engine::first_match(stream_db, doc.text, s2);
    ASSERT_EQ(a.has_value(), b.has_value()) << "verdicts diverge";
    if (a) {
      EXPECT_EQ(a->sig_index, b->sig_index);
      EXPECT_EQ(std::string(a->name), std::string(b->name));
      ++matched;
    }
  }
  EXPECT_GT(matched, 0u) << "oracle corpus never matched — vacuous test";
  std::remove(path.c_str());
}

TEST(ArtifactV2, Version1ArtifactStillLoads) {
  const serve::ServeFixture& fx = fixture();
  std::ostringstream os;
  core::save_artifact(os, fx.signatures, nullptr, /*version=*/1);
  const std::string v1 = os.str();

  std::istringstream is(v1);
  std::vector<core::DeployedSignature> loaded;
  const engine::Database db = engine::Database::from_artifact(is, &loaded);
  expect_same_signatures(loaded, fx.signatures);
  EXPECT_EQ(db.fingerprint(), fx.database->fingerprint());

  // The span loader accepts v1 too (replaying through the stream path);
  // nothing can be borrowed from the unaligned v1 layout.
  std::vector<std::byte> buf(v1.size());
  std::memcpy(buf.data(), v1.data(), v1.size());
  const core::BundleArtifact bundle = core::load_artifact(buf);
  EXPECT_FALSE(bundle.prefilter.zero_copy());
  expect_same_signatures(bundle.signatures, fx.signatures);
}

// Lifetime: the database holds its mapping alive. After the caller drops
// every other reference, scans must still read valid table memory — under
// ASan this is the unmap-while-borrowed test.
TEST(ArtifactV2, DatabaseKeepsMappingAliveAfterCallerDrops) {
  const serve::ServeFixture& fx = fixture();
  const std::string path = write_temp(fx.artifact, "keepalive");
  std::unique_ptr<engine::Database> db;
  {
    auto mapping = std::make_shared<const support::MappedFile>(
        support::MappedFile::open(path));
    db = std::make_unique<engine::Database>(
        engine::Database::from_artifact(std::move(mapping)));
  }  // the only external reference to the mapping is gone
  std::remove(path.c_str());

  engine::Scratch scratch;
  std::size_t matched = 0;
  for (const serve::CorpusDoc& doc : fx.docs) {
    if (engine::first_match(*db, doc.text, scratch)) ++matched;
  }
  EXPECT_GT(matched, 0u);
}

// A stream pinned to an mmap-backed epoch keeps that epoch's mapping
// alive across a hot swap that retires it: the stream must finish on its
// opening database reading valid memory (ASan catches the alternative).
TEST(ArtifactV2, PinnedStreamSurvivesSwapAwayFromMmapEpoch) {
  const serve::ServeFixture& fx = fixture();
  const std::string path = write_temp(fx.artifact, "pinned");
  auto mapping = std::make_shared<const support::MappedFile>(
      support::MappedFile::open(path));
  auto mmap_db = std::make_shared<const engine::Database>(
      engine::Database::from_artifact(std::move(mapping)));
  std::remove(path.c_str());

  serve::ServerConfig cfg;
  cfg.workers = 1;
  serve::ScanServer server(std::move(mmap_db), cfg);
  const std::uint64_t epoch0 = server.epoch();

  // Pick a doc the original database matches, so the verdict proves the
  // pinned tables were actually walked.
  const serve::CorpusDoc* target = nullptr;
  {
    engine::Scratch scratch;
    for (const serve::CorpusDoc& doc : fx.docs) {
      if (engine::first_match(*fx.database, doc.text, scratch)) {
        target = &doc;
        break;
      }
    }
  }
  ASSERT_NE(target, nullptr);

  serve::ScanServer::Stream stream = server.open_stream();
  EXPECT_EQ(stream.epoch(), epoch0);
  const std::size_t half = target->text.size() / 2;
  ASSERT_EQ(stream.feed(target->text.substr(0, half)),
            serve::RequestStatus::kOk);

  // Swap the serving database away: the server drops its reference to the
  // mmap epoch; only the pinned stream still holds it.
  std::istringstream art(fx.swap_artifact);
  ASSERT_TRUE(server.deploy_artifact(art).accepted);

  ASSERT_EQ(stream.feed(target->text.substr(half)),
            serve::RequestStatus::kOk);
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  serve::ScanResponse resp;
  ASSERT_EQ(stream.finish([&](serve::ScanResponse r) {
              std::lock_guard<std::mutex> lock(mu);
              resp = std::move(r);
              done = true;
              cv.notify_one();
            }),
            serve::RequestStatus::kOk);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  EXPECT_EQ(resp.status, serve::RequestStatus::kOk);
  EXPECT_EQ(resp.epoch, epoch0);
  EXPECT_TRUE(resp.matched);
  server.stop();
}

// ------------------------------ deltas ---------------------------------

core::DeployedSignature canary_signature(std::size_t base_size) {
  core::DeployedSignature canary;
  canary.name = "KZ.DeltaCanary." + std::to_string(base_size);
  canary.family = "DeltaCanary";
  canary.issued_day = 99;
  canary.pattern = "kzdeltacanaryliteralzz";
  canary.token_length = canary.pattern.size();
  return canary;
}

TEST(DeltaArtifact, SaveLoadRoundTrip) {
  const serve::ServeFixture& fx = fixture();
  core::DeltaArtifact delta;
  delta.base_fingerprint = core::fingerprint(fx.signatures);
  delta.retired = {0};
  delta.added = {canary_signature(fx.signatures.size())};
  std::vector<core::DeployedSignature> result = fx.signatures;
  result.push_back(delta.added[0]);
  delta.result_fingerprint = core::fingerprint(result, delta.retired);

  std::ostringstream os;
  core::save_delta(os, delta);
  std::istringstream is(os.str());
  const core::DeltaArtifact loaded = core::load_delta(is);
  EXPECT_EQ(loaded.base_fingerprint, delta.base_fingerprint);
  EXPECT_EQ(loaded.result_fingerprint, delta.result_fingerprint);
  EXPECT_EQ(loaded.retired, delta.retired);
  expect_same_signatures(loaded.added, delta.added);
}

TEST(DeltaArtifact, CorruptedPayloadIsRefusedByChecksum) {
  core::DeltaArtifact delta;
  delta.added = {canary_signature(0)};
  delta.result_fingerprint =
      core::fingerprint(delta.added, delta.retired);
  std::ostringstream os;
  core::save_delta(os, delta);
  std::string bytes = os.str();
  bytes[32] ^= 0x01;  // one payload bit
  std::istringstream is(bytes);
  EXPECT_THROW(core::load_delta(is), ArtifactError);

  std::istringstream truncated(os.str().substr(0, os.str().size() - 9));
  EXPECT_THROW(core::load_delta(truncated), Error);
}

TEST(DeltaArtifact, ExtendAppliesAddsAndTombstones) {
  const serve::ServeFixture& fx = fixture();
  const engine::Database base = engine::Database::compile(fx.signatures);
  ASSERT_EQ(base.fingerprint(), core::fingerprint(fx.signatures));

  core::DeltaArtifact delta;
  delta.base_fingerprint = base.fingerprint();
  delta.retired = {0};
  delta.added = {canary_signature(fx.signatures.size())};
  std::vector<core::DeployedSignature> result = fx.signatures;
  result.push_back(delta.added[0]);
  delta.result_fingerprint = core::fingerprint(result, delta.retired);

  const engine::Database next = base.extend(delta);
  EXPECT_EQ(next.size(), fx.signatures.size() + 1);
  EXPECT_EQ(next.active_size(), fx.signatures.size());
  EXPECT_TRUE(next.entry_retired(0));
  EXPECT_FALSE(next.entry_retired(1));
  EXPECT_EQ(next.fingerprint(), delta.result_fingerprint);

  // The added signature matches; the tombstoned slot never does again.
  engine::Scratch scratch;
  const auto hit = engine::first_match(
      next, "prefix kzdeltacanaryliteralzz suffix", scratch);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->sig_index, fx.signatures.size());
  for (const serve::CorpusDoc& doc : fx.docs) {
    const auto m = engine::first_match(next, doc.text, scratch);
    if (m) EXPECT_NE(m->sig_index, 0u) << "retired slot produced a match";
  }
}

TEST(DeltaArtifact, LineageMismatchesAreRefused) {
  const serve::ServeFixture& fx = fixture();
  const engine::Database base = engine::Database::compile(fx.signatures);

  core::DeltaArtifact wrong_base;
  wrong_base.base_fingerprint = base.fingerprint() ^ 1;
  EXPECT_THROW(base.extend(wrong_base), ArtifactError);

  core::DeltaArtifact wrong_result;
  wrong_result.base_fingerprint = base.fingerprint();
  wrong_result.added = {canary_signature(fx.signatures.size())};
  wrong_result.result_fingerprint = 0xDEAD;
  EXPECT_THROW(base.extend(wrong_result), ArtifactError);

  core::DeltaArtifact bad_retire;
  bad_retire.base_fingerprint = base.fingerprint();
  bad_retire.retired = {fx.signatures.size() + 100};
  EXPECT_THROW(base.extend(bad_retire), ArtifactError);
}

TEST(DeltaArtifact, EmptyPipelineExportsSelfConsistentDelta) {
  core::KizzlePipeline pipeline(core::PipelineConfig{}, 1);
  std::ostringstream os;
  pipeline.export_delta(os, 0);
  std::istringstream is(os.str());
  const core::DeltaArtifact delta = core::load_delta(is);
  EXPECT_EQ(delta.base_fingerprint, core::fingerprint({}));
  EXPECT_EQ(delta.result_fingerprint, core::fingerprint({}));
  EXPECT_TRUE(delta.retired.empty());
  EXPECT_TRUE(delta.added.empty());
}

// --------------------------- serve delta gate ---------------------------

std::string good_delta_bytes(const serve::ServeFixture& fx) {
  core::DeltaArtifact delta;
  delta.base_fingerprint = core::fingerprint(fx.signatures);
  delta.added = {canary_signature(fx.signatures.size())};
  std::vector<core::DeployedSignature> result = fx.signatures;
  result.push_back(delta.added[0]);
  delta.result_fingerprint = core::fingerprint(result);
  std::ostringstream os;
  core::save_delta(os, delta);
  return os.str();
}

TEST(ScanServerDelta, DeployDeltaSwapsAndRefusalsKeepEpoch) {
  const serve::ServeFixture& fx = fixture();
  serve::ScanServer server(fx.database, serve::ServerConfig{});
  const std::uint64_t epoch0 = server.epoch();
  const std::string good = good_delta_bytes(fx);

  // Corrupted delta: typed refusal, serving epoch untouched.
  std::string bad = good;
  bad[40] ^= 0x01;
  std::istringstream bad_is(bad);
  const auto refused = server.deploy_delta(bad_is);
  EXPECT_FALSE(refused.accepted);
  EXPECT_FALSE(refused.reason.empty());
  EXPECT_EQ(server.epoch(), epoch0);
  EXPECT_EQ(server.database(), fx.database);

  // The real delta applies incrementally.
  std::istringstream good_is(good);
  const auto accepted = server.deploy_delta(good_is);
  EXPECT_TRUE(accepted.accepted) << accepted.reason;
  EXPECT_EQ(server.epoch(), epoch0 + 1);
  EXPECT_EQ(server.database()->size(), fx.signatures.size() + 1);

  // Replaying the same delta is now a lineage mismatch: the serving set
  // already moved past its base. Typed refusal, epoch untouched.
  std::istringstream replay(good);
  const auto stale = server.deploy_delta(replay);
  EXPECT_FALSE(stale.accepted);
  EXPECT_FALSE(stale.reason.empty());
  EXPECT_EQ(server.epoch(), epoch0 + 1);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.epoch_swaps, 1u);
  EXPECT_EQ(stats.swaps_rejected, 2u);
  server.stop();
}

// ------------------------ watcher debounce -----------------------------

// A release process writing the artifact non-atomically: the watcher must
// never deploy a half-written file (every partial prefix fails the
// checksum, so any rejection here is a debounce failure), then pick up
// the complete artifact once the file stops changing.
TEST(ArtifactWatcherDelta, DebounceSkipsPartialWritesThenDeploys) {
  const serve::ServeFixture& fx = fixture();
  const std::string path = write_temp(fx.artifact, "debounce");
  serve::ScanServer server(fx.database, serve::ServerConfig{});
  const std::uint64_t epoch0 = server.epoch();
  {
    serve::ArtifactWatcher watcher(server, path,
                                   std::chrono::milliseconds(10),
                                   std::chrono::milliseconds(30));
    std::this_thread::sleep_for(std::chrono::milliseconds(60));  // prime

    // Rewrite the file as a slow writer would: truncate, then grow in
    // small chunks with the file identity changing the whole time.
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      const std::string& next = fx.swap_artifact;
      for (std::size_t at = 0; at < next.size(); at += 4096) {
        out.write(next.data() + at,
                  static_cast<std::streamsize>(
                      std::min<std::size_t>(4096, next.size() - at)));
        out.flush();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }

    // Once the writer stops, the settled file deploys through the gate.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.epoch() == epoch0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server.epoch(), epoch0 + 1);
    EXPECT_GE(watcher.stats().swaps, 1u);
    EXPECT_EQ(watcher.stats().rejected, 0u)
        << "watcher deployed a half-written artifact";
    watcher.stop();
  }
  server.stop();
  std::remove(path.c_str());
}

// Deltas ride the same watch path: a KZDELTA renamed over the watched
// file is sniffed by magic and applied incrementally.
TEST(ArtifactWatcherDelta, WatcherRoutesDeltaByMagic) {
  const serve::ServeFixture& fx = fixture();
  const std::string path = write_temp(fx.artifact, "route");
  serve::ScanServer server(fx.database, serve::ServerConfig{});
  const std::uint64_t epoch0 = server.epoch();
  {
    serve::ArtifactWatcher watcher(server, path,
                                   std::chrono::milliseconds(10));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // prime

    const std::string tmp = write_temp(good_delta_bytes(fx), "route_tmp");
    ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server.epoch() == epoch0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server.epoch(), epoch0 + 1);
    EXPECT_GE(watcher.stats().swaps, 1u);
    EXPECT_EQ(server.database()->size(), fx.signatures.size() + 1);
    watcher.stop();
  }
  server.stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kizzle
