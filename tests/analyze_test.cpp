// kizzle lint (analyze/analyze.h) contract tests:
//
//   * program facts — the Instr-graph walk finds exactly the unbounded
//     loops, tells catastrophic nesting ((a+)+) from merely polynomial
//     nesting ((a+b+)+), and prices loop-free programs below any budget;
//   * a handcrafted pathological database triggers each diagnostic class
//     exactly once (backtracking bomb, shadowed, duplicate, dead);
//   * the kitgen pipeline's own signature databases lint clean — the
//     deployment gate must never veto what the signature compiler
//     actually produces;
//   * artifact verification — a round-tripped artifact is clean, a
//     tampered prefilter (wrong literal under a signature's id) is an
//     artifact-mismatch error, and every committed `.kpf` corpus seed
//     lints clean;
//   * dense shards are reported once the estimated first-stage hit rate
//     passes the routing threshold.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "core/pipeline.h"
#include "core/sigdb.h"
#include "engine/engine.h"
#include "kitgen/stream.h"
#include "match/pattern.h"

namespace kizzle::analyze {
namespace {

detail::ProgramFacts facts_of(const std::string& pattern,
                              std::size_t reference_len = 64 * 1024) {
  const match::Pattern p = match::Pattern::compile(pattern);
  return detail::program_facts(p.compiled_program(), reference_len);
}

TEST(ProgramFacts, BoundedRepetitionsCompileLoopFree) {
  const auto facts = facts_of("ab{2,5}c{3}[a-z]{1,4}d");
  EXPECT_EQ(facts.loops, 0u);
  EXPECT_EQ(facts.max_loop_depth, 0);
  EXPECT_FALSE(facts.ambiguous_nesting);
  // Loop-free = one DAG walk per attempt: far below any real budget.
  EXPECT_LT(facts.log2_step_bound, 22.0);
}

TEST(ProgramFacts, NestedOverlappingQuantifiersAreAmbiguous) {
  const auto facts = facts_of("([a-z]+)+qzvwxk");
  EXPECT_GE(facts.loops, 2u);
  EXPECT_GE(facts.max_loop_depth, 2);
  EXPECT_TRUE(facts.ambiguous_nesting);
  EXPECT_FALSE(facts.ambiguous_detail.empty());
}

TEST(ProgramFacts, AlternationInsideOuterLoopIsAmbiguous) {
  // (a+|b+)+ blows up on "aaaa…!": the run of a's splits between the
  // inner and outer quantifier in exponentially many ways.
  const auto facts = facts_of("(a+|b+)+x");
  EXPECT_TRUE(facts.ambiguous_nesting);
}

TEST(ProgramFacts, SequentialInnerLoopsArePolynomialNotFlagged) {
  // (a+b+)+ is only quadratic: the outer loop cannot return to the a+
  // entry without consuming a mandatory b.
  const auto facts = facts_of("(a+b+)+x");
  EXPECT_GE(facts.loops, 3u);
  EXPECT_GE(facts.max_loop_depth, 2);
  EXPECT_FALSE(facts.ambiguous_nesting);
  // Depth-2 nesting still prices past the default 2^22 VM budget at
  // 64 KiB samples — that is the step-bound warning's trigger.
  EXPECT_GT(facts.log2_step_bound, 22.0);
}

TEST(ProgramFacts, LiteralAlternationShapeIsDetected) {
  const auto facts = facts_of("abcdef|ghijkl|mnopqr");
  EXPECT_EQ(facts.loops, 0u);
  EXPECT_TRUE(facts.literal_alternation);
}

TEST(ProgramFacts, DeadOnNormalizedText) {
  // Normalization strips whitespace and quotes before any scan, so a
  // pattern whose every accepting path needs a quote can never fire.
  EXPECT_TRUE(facts_of("uvw\"xyz").dead_normalized);
  EXPECT_FALSE(facts_of("uvwxyz").dead_normalized);
  // A quote behind an alternation leaves a live path.
  EXPECT_FALSE(facts_of("uvw(\"|z)xyz").dead_normalized);
}

// The pathological table: one signature per diagnostic class, each
// triggering its class exactly once.
TEST(AnalyzeDatabase, PathologicalTableTriggersEachClassOnce) {
  const engine::Database db = engine::Database::compile({
      {"bomb", "Evil", "([a-z]+)+qzvwxk"},
      {"shadow.early", "Evil", "mnopqr"},
      {"shadow.late", "Evil", "zzmnopqrzz"},
      {"dead", "Evil", "uvw\"xyz"},
      {"dup.first", "Evil", "tuvwxy"},
      {"dup.second", "Evil", "tuvwxy"},
  });
  const Report report = analyze_database(db);

  EXPECT_EQ(report.count(Check::kBacktrackingBomb), 1u);
  EXPECT_EQ(report.count(Check::kShadowedSignature), 1u);
  EXPECT_EQ(report.count(Check::kDeadSignature), 1u);
  EXPECT_EQ(report.count(Check::kDuplicateSignature), 1u);
  EXPECT_EQ(report.errors(), 3u);
  EXPECT_FALSE(report.clean());

  // The findings point at the right signatures.
  for (const Finding& f : report.findings) {
    switch (f.check) {
      case Check::kBacktrackingBomb:
        EXPECT_EQ(f.signature, "bomb");
        break;
      case Check::kShadowedSignature:
        EXPECT_EQ(f.signature, "shadow.late");
        break;
      case Check::kDeadSignature:
        EXPECT_EQ(f.signature, "dead");
        break;
      case Check::kDuplicateSignature:
        EXPECT_EQ(f.signature, "dup.second");
        break;
      default:
        break;
    }
  }
}

TEST(AnalyzeCandidate, GateFlagsOnlyTheCandidate) {
  const engine::Database db = engine::Database::compile({
      {"deployed.literal", "Evil", "mnopqr"},
  });
  // A candidate whose guaranteed literal contains the deployed anchor is
  // shadowed: it would never report a match.
  const match::Pattern shadowed = match::Pattern::compile("zzmnopqrzz");
  const Report bad = analyze_candidate(db, "candidate", shadowed);
  EXPECT_EQ(bad.count(Check::kShadowedSignature), 1u);
  EXPECT_FALSE(bad.clean());

  const match::Pattern fine = match::Pattern::compile("qrstuvwx");
  EXPECT_TRUE(analyze_candidate(db, "candidate", fine).clean());
}

TEST(AnalyzePipeline, DeploymentGateVetoesErrorFindings) {
  // The same veto the KizzlePipeline applies pre-deployment
  // (PipelineConfig::lint_deployments): error findings block the release.
  const engine::Database db =
      engine::Database::compile(std::vector<engine::Database::Spec>{});
  const match::Pattern bomb = match::Pattern::compile("([a-z]+)+qzvwxk");
  const Report report = analyze_candidate(db, "candidate", bomb);
  EXPECT_GE(report.errors(), 1u);
}

// The signature compiler only emits bounded quantifiers and literal
// classes over normalized text, so everything the pipeline actually
// deploys must pass its own gate — on the compiled database and on the
// exported artifact alike.
TEST(AnalyzeKitgen, PipelineDatabaseAndArtifactLintClean) {
  kitgen::StreamConfig scfg;
  scfg.volume_scale = 0.25;
  kitgen::StreamSimulator sim(scfg);

  core::PipelineConfig pcfg;
  pcfg.partitions = 4;
  pcfg.threads = 4;
  core::KizzlePipeline pipeline(pcfg, 12345);
  for (const auto& [family, payload] : sim.seed_corpus()) {
    pipeline.seed_family(std::string(kitgen::family_name(family)), 0.60,
                         payload);
  }
  const auto batch = sim.generate_day(kitgen::kAug1);
  std::vector<std::string> htmls;
  for (const auto& s : batch.samples) htmls.push_back(s.html);
  pipeline.process_day(kitgen::kAug1, htmls);
  ASSERT_FALSE(pipeline.signatures().empty());

  const Report db_report = analyze_database(pipeline.database());
  EXPECT_EQ(db_report.errors(), 0u) << [&] {
    std::ostringstream os;
    write_text(os, db_report);
    return os.str();
  }();

  std::stringstream bundle;
  pipeline.export_artifact(bundle);
  const Report art_report = analyze_artifact(bundle);
  EXPECT_EQ(art_report.errors(), 0u) << [&] {
    std::ostringstream os;
    write_text(os, art_report);
    return os.str();
  }();
}

std::vector<core::DeployedSignature> two_signatures() {
  core::DeployedSignature a;
  a.name = "KZ.T.1";
  a.family = "T";
  a.issued_day = 1;
  a.pattern = "abcdefgh";
  a.token_length = 1;
  core::DeployedSignature b = a;
  b.name = "KZ.T.2";
  b.issued_day = 2;
  b.pattern = "qrstuvwx";
  return {a, b};
}

TEST(AnalyzeArtifact, CleanRoundTrip) {
  std::stringstream os;
  core::save_artifact(os, two_signatures());
  const Report report = analyze_artifact(os);
  EXPECT_EQ(report.count(Check::kArtifactMismatch), 0u);
  EXPECT_TRUE(report.clean());
}

TEST(AnalyzeArtifact, TamperedTablesAreOneMismatchError) {
  // A structurally valid prefilter whose tables are NOT the compilation
  // of the embedded source: signature 0's id registered under signature
  // 1's literal and vice versa. The bundle's checksum is consistent —
  // only recompile-and-compare catches it.
  const auto sigs = two_signatures();
  match::LiteralPrefilter tampered;
  tampered.add(0, "qrstuvwx");
  tampered.add(1, "abcdefgh");
  tampered.build();
  std::stringstream os;
  core::save_artifact(os, sigs, &tampered);

  const Report report = analyze_artifact(os);
  EXPECT_EQ(report.count(Check::kArtifactMismatch), 1u);
  EXPECT_FALSE(report.clean());

  // The same bundle with verification off is not flagged.
  os.clear();
  os.seekg(0);
  Options opts;
  opts.verify_artifact = false;
  EXPECT_EQ(analyze_artifact(os, opts).count(Check::kArtifactMismatch), 0u);
}

TEST(AnalyzeArtifact, CommittedCorpusSeedsLintClean) {
  const std::filesystem::path dir =
      std::filesystem::path(KIZZLE_FUZZ_DIR) / "corpus" / "load_artifact";
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".kpf") continue;
    std::ifstream is(entry.path(), std::ios::binary);
    ASSERT_TRUE(is) << entry.path();
    const Report report = analyze_artifact(is);
    EXPECT_EQ(report.errors(), 0u) << entry.path();
    ++checked;
  }
  EXPECT_GE(checked, 2u);  // demo2.kpf and tiny.kpf at minimum
}

TEST(AnalyzeDatabase, DenseShardsAreReported) {
  // Compiled patterns only register literals of 3+ bytes, and the planner
  // buckets them by prefix, so a database's shards sit well under the
  // dense-ROUTE threshold by construction (the raw-registration dense
  // case, where routing actually flips, is covered in teddy_test).
  // Operators can still ask the analyzer to report shard density at their
  // own level: thousands of common-alphabet patterns against a tightened
  // threshold must surface the estimate.
  constexpr std::string_view kAlpha = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::vector<engine::Database::Spec> specs;
  for (std::size_t i = 0; i < 2000; ++i) {
    std::string lit;
    lit.push_back(kAlpha[i % 36]);
    lit.push_back(kAlpha[(i / 36) % 36]);
    lit.push_back(kAlpha[(i / (36 * 36)) % 36]);
    specs.push_back({"d" + std::to_string(i), "T", lit});
  }
  const engine::Database db = engine::Database::compile(specs);

  // Default threshold: nothing to report, and nothing routed away.
  EXPECT_FALSE(db.prefilter().teddy_dense());
  EXPECT_EQ(analyze_database(db).count(Check::kDenseShard), 0u);

  Options opts;
  opts.dense_shard_threshold = 1e-3;
  const Report report = analyze_database(db, opts);
  EXPECT_GE(report.count(Check::kDenseShard), 1u);
  // Dense shards are a routing fact, not a deployment blocker.
  for (const Finding& f : report.findings) {
    if (f.check == Check::kDenseShard) {
      EXPECT_EQ(f.severity, Severity::kWarning);
      EXPECT_NE(f.message.find("dense shard"), std::string::npos);
    }
  }
}

TEST(AnalyzeReport, RendersTextAndJson) {
  const engine::Database db = engine::Database::compile({
      {"dup.first", "Evil", "tuvwxy"},
      {"dup.second", "Evil", "tuvwxy"},
  });
  const Report report = analyze_database(db);
  ASSERT_EQ(report.count(Check::kDuplicateSignature), 1u);

  std::ostringstream text;
  write_text(text, report);
  EXPECT_NE(text.str().find("[duplicate-signature]"), std::string::npos);
  EXPECT_NE(text.str().find("warning"), std::string::npos);

  std::ostringstream json;
  write_json(json, report);
  EXPECT_NE(json.str().find("\"check\":\"duplicate-signature\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"clean\":true"), std::string::npos);
}

}  // namespace
}  // namespace kizzle::analyze
