#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "support/hash.h"
#include "support/interner.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace kizzle {
namespace {

// ----------------------------------------------------------------- Rng --

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingleValue) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(3, 2), std::invalid_argument);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IndexRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, IdentifierShape) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const std::string id = rng.identifier(3, 8);
    ASSERT_GE(id.size(), 3u);
    ASSERT_LE(id.size(), 8u);
    EXPECT_FALSE(id[0] >= '0' && id[0] <= '9') << id;
  }
}

TEST(Rng, StringOverUsesAlphabetOnly) {
  Rng rng(19);
  const std::string s = rng.string_over("ab", 500);
  EXPECT_EQ(s.find_first_not_of("ab"), std::string::npos);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng fork = a.fork();
  // The fork's stream should not be identical to the parent's.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == fork.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------- hash --

TEST(Hash, Fnv1aKnownValue) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(fnv1a64(std::string_view("")), 0xCBF29CE484222325ull);
  EXPECT_NE(fnv1a64(std::string_view("a")), fnv1a64(std::string_view("b")));
}

TEST(Hash, RollingMatchesRecompute) {
  const std::vector<std::uint32_t> data = {5, 9, 2, 7, 7, 1, 3, 8, 2, 4};
  RollingHash rh(3);
  std::vector<std::uint64_t> rolled = rh.all(data);
  ASSERT_EQ(rolled.size(), data.size() - 2);
  for (std::size_t i = 0; i + 3 <= data.size(); ++i) {
    RollingHash fresh(3);
    const std::uint64_t direct =
        fresh.init(std::span<const std::uint32_t>(data).subspan(i, 3));
    EXPECT_EQ(rolled[i], direct) << "window " << i;
  }
}

TEST(Hash, RollingWindowOfOne) {
  const std::vector<std::uint32_t> data = {1, 2, 3};
  RollingHash rh(1);
  const auto all = rh.all(data);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_NE(all[0], all[1]);
}

TEST(Hash, RollingRejectsZeroWindow) {
  EXPECT_THROW(RollingHash(0), std::invalid_argument);
}

TEST(Hash, RollingShortInputYieldsNothing) {
  const std::vector<std::uint32_t> data = {1, 2};
  RollingHash rh(5);
  EXPECT_TRUE(rh.all(data).empty());
}

// ------------------------------------------------------------ interner --

TEST(Interner, AssignsDenseIdsInOrder) {
  Interner in;
  EXPECT_EQ(in.intern("alpha"), 0u);
  EXPECT_EQ(in.intern("beta"), 1u);
  EXPECT_EQ(in.intern("alpha"), 0u);
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, TextRoundTrip) {
  Interner in;
  const auto id = in.intern("hello");
  EXPECT_EQ(in.text(id), "hello");
}

TEST(Interner, FindMissingReturnsNone) {
  Interner in;
  EXPECT_EQ(in.find("nope"), Interner::kNone);
}

TEST(Interner, TextThrowsOnUnknownId) {
  Interner in;
  EXPECT_THROW(in.text(12), std::out_of_range);
}

// --------------------------------------------------------- thread pool --

TEST(ThreadPool, ParallelForRunsEverything) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait();
  pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

// Regression: parallel_for batches carry per-call completion latches, so
// concurrent batches sharing one pool cannot steal each other's completion
// — every batch must observe all of its own tasks done at return, even
// with many batches interleaved from different threads.
TEST(ThreadPool, ConcurrentBatchesOnOnePoolAreIsolated) {
  ThreadPool pool(4);
  constexpr int kBatches = 8;
  constexpr std::size_t kTasks = 64;
  std::atomic<int> incomplete_batches{0};
  std::vector<std::thread> callers;
  for (int b = 0; b < kBatches; ++b) {
    callers.emplace_back([&pool, &incomplete_batches] {
      for (int round = 0; round < 5; ++round) {
        std::vector<std::atomic<int>> hits(kTasks);
        pool.parallel_for(kTasks, [&hits](std::size_t i) { hits[i]++; });
        // parallel_for returned: THIS batch must be fully done.
        for (const auto& h : hits) {
          if (h.load() != 1) incomplete_batches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(incomplete_batches.load(), 0);
}

// Each concurrent batch sees (only) its own first-thrown exception.
TEST(ThreadPool, ConcurrentBatchExceptionsStayWithTheirBatch) {
  ThreadPool pool(4);
  std::atomic<int> wrong{0};
  std::vector<std::thread> callers;
  for (int b = 0; b < 6; ++b) {
    const bool should_throw = b % 2 == 0;
    callers.emplace_back([&pool, &wrong, should_throw] {
      for (int round = 0; round < 5; ++round) {
        bool threw = false;
        try {
          pool.parallel_for(16, [should_throw](std::size_t i) {
            if (should_throw && i == 7) throw std::runtime_error("boom");
          });
        } catch (const std::runtime_error&) {
          threw = true;
        }
        if (threw != should_throw) wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(wrong.load(), 0);
}

// ------------------------------------------------------------- strings --

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitMultiCharDelim) {
  const auto parts = split("47y642y6100y6", "y6");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "47");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, JoinInvertsSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("ababa", "a", "xx"), "xxbxxbxx");
  EXPECT_EQ(replace_all("none", "zz", "y"), "none");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("kizzle", "ki"));
  EXPECT_FALSE(starts_with("k", "ki"));
  EXPECT_TRUE(ends_with("kizzle", "le"));
  EXPECT_FALSE(ends_with("e", "le"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b \n"), "a b");
  EXPECT_EQ(trim("\t\r\n"), "");
}

TEST(Strings, AllDigits) {
  EXPECT_TRUE(all_digits("0123"));
  EXPECT_FALSE(all_digits(""));
  EXPECT_FALSE(all_digits("12a"));
}

TEST(Strings, FormatPercent) {
  EXPECT_EQ(format_percent(0.0312, 2), "3.12%");
  EXPECT_EQ(format_percent(0.0, 1), "0.0%");
}

// --------------------------------------------------------------- table --

TEST(Table, RendersAlignedColumns) {
  Table t({"kit", "count"});
  t.add_row({"Nuclear", "6106"});
  t.add_row({"RIG", "1409"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Nuclear"), std::string::npos);
  EXPECT_NE(s.find("1409"), std::string::npos);
}

TEST(Table, RejectsMisshapenRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace kizzle
