#include <gtest/gtest.h>

#include "av/analyst.h"
#include "av/av_engine.h"
#include "kitgen/stream.h"
#include "text/normalize.h"

namespace kizzle::av {
namespace {

TEST(AvEngine, ReleaseDayGatesDetection) {
  ManualAvEngine engine;
  engine.schedule(
      AvRelease{10, kitgen::KitFamily::Rig, "RIG.sig1", "=y6;function"});
  EXPECT_FALSE(engine.detects(9, "var q==y6;functionf(t){}"));
  EXPECT_TRUE(engine.detects(10, "var q==y6;functionf(t){}"));
  EXPECT_TRUE(engine.detects(25, "var q==y6;functionf(t){}"));
}

TEST(AvEngine, MatchReturnsTheRelease) {
  ManualAvEngine engine;
  engine.schedule(AvRelease{1, kitgen::KitFamily::Angler, "ANG.sig1", "abc"});
  engine.schedule(AvRelease{1, kitgen::KitFamily::Rig, "RIG.sig1", "xyz"});
  const auto hit = engine.match(5, "zzzxyzzz");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "RIG.sig1");
  EXPECT_EQ(hit->family, kitgen::KitFamily::Rig);
}

TEST(AvEngine, EmptyLiteralRejected) {
  ManualAvEngine engine;
  EXPECT_THROW(
      engine.schedule(AvRelease{1, kitgen::KitFamily::Rig, "bad", ""}),
      std::invalid_argument);
}

TEST(AvEngine, ReleasesForFamilySorted) {
  ManualAvEngine engine;
  engine.schedule(AvRelease{9, kitgen::KitFamily::Rig, "RIG.sig2", "b"});
  engine.schedule(AvRelease{2, kitgen::KitFamily::Rig, "RIG.sig1", "a"});
  engine.schedule(AvRelease{5, kitgen::KitFamily::Angler, "ANG.sig1", "c"});
  const auto rig = engine.releases_for(kitgen::KitFamily::Rig);
  ASSERT_EQ(rig.size(), 2u);
  EXPECT_EQ(rig[0].name, "RIG.sig1");
  EXPECT_EQ(rig[1].name, "RIG.sig2");
}

TEST(Analyst, InitialSignaturesDetectInitialKits) {
  kitgen::StreamConfig cfg;
  cfg.volume_scale = 0.1;
  kitgen::StreamSimulator sim(cfg);
  ManualAvEngine engine;
  Analyst analyst;
  analyst.install_initial_signatures(sim, engine);
  EXPECT_GE(engine.releases().size(), 7u);  // 4 features + marker + 2 structural

  // Day-1 samples of every kit are (mostly) detected.
  const auto batch = sim.generate_day(kitgen::kAug1);
  std::size_t detected = 0;
  std::size_t malicious = 0;
  for (const auto& s : batch.samples) {
    if (s.truth == kitgen::Truth::Benign) continue;
    ++malicious;
    if (engine.detects(kitgen::kAug1, text::normalize_raw(s.html))) {
      ++detected;
    }
  }
  ASSERT_GT(malicious, 0u);
  EXPECT_GE(detected * 100, malicious * 85);
}

TEST(Analyst, ReactsToKitEventsWithLag) {
  kitgen::StreamConfig cfg;
  cfg.volume_scale = 0.05;
  kitgen::StreamSimulator sim(cfg);
  ManualAvEngine engine;
  AnalystConfig acfg;
  acfg.lag_rig = 4;
  Analyst analyst(acfg);
  const std::size_t before = engine.releases().size();
  // Walk to the RIG delimiter change on 8/5.
  for (int day = kitgen::kAug1; day <= kitgen::day_from_date(8, 5); ++day) {
    sim.generate_day(day);
    analyst.observe_day(day, sim, engine);
  }
  ASSERT_GT(engine.releases().size(), before);
  // The new release is scheduled at event day + lag.
  const auto rig = engine.releases_for(kitgen::KitFamily::Rig);
  bool found = false;
  for (const auto& r : rig) {
    if (r.day == kitgen::day_from_date(8, 5) + 4) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Analyst, AnglerWindowOfVulnerability) {
  // The Fig 6 story end-to-end: after 8/13 the new Angler version evades
  // all deployed AV signatures until the 8/19 release.
  kitgen::StreamConfig cfg;
  cfg.volume_scale = 0.3;
  kitgen::StreamSimulator sim(cfg);
  ManualAvEngine engine;
  Analyst analyst;  // lag_angler = 6 -> release on 8/19
  analyst.install_initial_signatures(sim, engine);

  // Average FN over multi-day phases to smooth small-sample noise.
  std::size_t totals[3] = {0, 0, 0};  // before / during / after
  std::size_t missed[3] = {0, 0, 0};
  for (int day = kitgen::kAug1; day <= kitgen::day_from_date(8, 26); ++day) {
    const auto batch = sim.generate_day(day);
    analyst.observe_day(day, sim, engine);
    int phase = -1;
    if (day >= kitgen::day_from_date(8, 7) &&
        day <= kitgen::day_from_date(8, 12)) {
      phase = 0;
    } else if (day >= kitgen::day_from_date(8, 14) &&
               day <= kitgen::day_from_date(8, 18)) {
      phase = 1;
    } else if (day >= kitgen::day_from_date(8, 20) &&
               day <= kitgen::day_from_date(8, 26)) {
      phase = 2;
    }
    if (phase < 0) continue;
    for (const auto& s : batch.samples) {
      if (s.truth != kitgen::Truth::Angler) continue;
      ++totals[phase];
      if (!engine.detects(day, text::normalize_raw(s.html))) {
        ++missed[phase];
      }
    }
  }
  for (int phase = 0; phase < 3; ++phase) ASSERT_GT(totals[phase], 0u);
  const double fn_before = static_cast<double>(missed[0]) / totals[0];
  const double fn_during = static_cast<double>(missed[1]) / totals[1];
  const double fn_after = static_cast<double>(missed[2]) / totals[2];
  EXPECT_LT(fn_before, 0.15);
  EXPECT_GT(fn_during, 0.35);  // the window: ~55% of samples on the new version
  EXPECT_LT(fn_after, 0.15);   // closed by the 8/19 release
}

}  // namespace
}  // namespace kizzle::av
