#include <gtest/gtest.h>

#include <numeric>

#include "distance/bitparallel.h"
#include "distance/edit_distance.h"
#include "support/rng.h"

namespace kizzle::dist {
namespace {

std::vector<Sym> syms(std::initializer_list<Sym> v) { return v; }

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(edit_distance(syms({1, 2, 3}), syms({1, 2, 3})), 0u);
  EXPECT_EQ(edit_distance(syms({1, 2, 3}), syms({1, 9, 3})), 1u);
  EXPECT_EQ(edit_distance(syms({1, 2, 3}), syms({1, 3})), 1u);
  EXPECT_EQ(edit_distance(syms({}), syms({1, 2})), 2u);
  EXPECT_EQ(edit_distance(syms({1, 2, 3, 4}), syms({4, 3, 2, 1})), 4u);
}

TEST(EditDistance, KittenSitting) {
  // Classic: kitten -> sitting = 3.
  const std::vector<Sym> kitten = {'k', 'i', 't', 't', 'e', 'n'};
  const std::vector<Sym> sitting = {'s', 'i', 't', 't', 'i', 'n', 'g'};
  EXPECT_EQ(edit_distance(kitten, sitting), 3u);
}

TEST(EditDistance, BoundedAgreesWhenUnderLimit) {
  const std::vector<Sym> a = {1, 2, 3, 4, 5, 6};
  const std::vector<Sym> b = {1, 2, 9, 4, 5, 7};
  EXPECT_EQ(edit_distance_bounded(a, b, 6), edit_distance(a, b));
}

TEST(EditDistance, BoundedClampsWhenOverLimit) {
  const std::vector<Sym> a = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<Sym> b = {9, 10, 11, 12, 13, 14, 15, 16};
  EXPECT_EQ(edit_distance_bounded(a, b, 3), 4u);
}

TEST(EditDistance, BoundedLengthGapShortCircuits) {
  const std::vector<Sym> a = {1};
  const std::vector<Sym> b = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(edit_distance_bounded(a, b, 2), 3u);
}

TEST(EditDistance, BoundedZeroLimit) {
  const std::vector<Sym> a = {1, 2};
  EXPECT_EQ(edit_distance_bounded(a, a, 0), 0u);
  EXPECT_EQ(edit_distance_bounded(a, syms({1, 3}), 0), 1u);
}

TEST(EditDistance, NormalizedRange) {
  EXPECT_DOUBLE_EQ(normalized_edit_distance(syms({}), syms({})), 0.0);
  EXPECT_DOUBLE_EQ(normalized_edit_distance(syms({1}), syms({2})), 1.0);
  EXPECT_DOUBLE_EQ(normalized_edit_distance(syms({1, 2}), syms({1, 2})), 0.0);
}

TEST(EditDistance, WithinNormalizedThreshold) {
  // 1 edit over 10 tokens = 0.1.
  std::vector<Sym> a(10);
  std::iota(a.begin(), a.end(), 0);
  std::vector<Sym> b = a;
  b[5] = 99;
  EXPECT_TRUE(within_normalized(a, b, 0.10));
  b[6] = 98;
  EXPECT_FALSE(within_normalized(a, b, 0.10));
}

TEST(EditDistance, WithinNormalizedEmpty) {
  EXPECT_TRUE(within_normalized(syms({}), syms({}), 0.1));
  EXPECT_FALSE(within_normalized(syms({}), syms({1, 2}), 0.1));
}

TEST(Histogram, L1Distance) {
  const auto ha = SymbolHistogram::of(syms({1, 1, 2, 3}));
  const auto hb = SymbolHistogram::of(syms({1, 2, 2, 4}));
  // |2-1|(sym1) + |1-2|(sym2) + 1(sym3) + 1(sym4) = 4
  EXPECT_EQ(ha.l1_distance(hb), 4u);
  EXPECT_EQ(ha.l1_distance(ha), 0u);
}

TEST(Histogram, LowerBoundNeverExceedsTrueDistance) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Sym> a;
    std::vector<Sym> b;
    const std::size_t la = 1 + rng.index(40);
    const std::size_t lb = 1 + rng.index(40);
    for (std::size_t i = 0; i < la; ++i) a.push_back(static_cast<Sym>(rng.index(8)));
    for (std::size_t i = 0; i < lb; ++i) b.push_back(static_cast<Sym>(rng.index(8)));
    const auto ha = SymbolHistogram::of(a);
    const auto hb = SymbolHistogram::of(b);
    EXPECT_LE(edit_distance_lower_bound(ha, hb, a.size(), b.size()),
              edit_distance(a, b));
  }
}

// Metric properties on random streams.
class DistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistanceProperty, MetricAxioms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 5);
  auto random_stream = [&](std::size_t max_len) {
    std::vector<Sym> s(1 + rng.index(max_len));
    for (auto& x : s) x = static_cast<Sym>(rng.index(6));
    return s;
  };
  const auto a = random_stream(30);
  const auto b = random_stream(30);
  const auto c = random_stream(30);
  // identity
  EXPECT_EQ(edit_distance(a, a), 0u);
  // symmetry
  EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
  // triangle inequality
  EXPECT_LE(edit_distance(a, c),
            edit_distance(a, b) + edit_distance(b, c));
  // bounded agrees with exact under a generous limit
  EXPECT_EQ(edit_distance_bounded(a, b, 64), edit_distance(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceProperty, ::testing::Range(0, 25));

// The banded implementation agrees with exact for every limit.
class BandedSweep : public ::testing::TestWithParam<int> {};

TEST_P(BandedSweep, AgreesWithExactOrClamps) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9176 + 3);
  std::vector<Sym> a(5 + rng.index(30));
  std::vector<Sym> b(5 + rng.index(30));
  for (auto& x : a) x = static_cast<Sym>(rng.index(5));
  for (auto& x : b) x = static_cast<Sym>(rng.index(5));
  const std::size_t exact = edit_distance(a, b);
  for (std::size_t limit = 0; limit < 20; ++limit) {
    const std::size_t banded = edit_distance_bounded(a, b, limit);
    if (exact <= limit) {
      EXPECT_EQ(banded, exact) << "limit=" << limit;
    } else {
      EXPECT_EQ(banded, limit + 1) << "limit=" << limit;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedSweep, ::testing::Range(0, 25));

// ----------------------- bit-parallel distance -----------------------

// The bit-parallel bounded distance must agree with the scalar reference
// DP on random symbol streams, across word-boundary lengths, alphabets
// larger than 64 distinct symbols, and limits pinned to the edges
// (d - 1, d, d + 1) where the clamp kicks in.
class BitParallelProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitParallelProperty, MatchesReferenceDp) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 11);
  const std::uint32_t alphabets[] = {2, 5, 64, 100, 500};
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint32_t alphabet = alphabets[rng.index(5)];
    // Lengths straddle the 64-symbol word boundary and the blocked path.
    std::vector<Sym> a(rng.index(200));
    std::vector<Sym> b(rng.index(200));
    for (auto& x : a) x = static_cast<Sym>(rng.index(alphabet));
    for (auto& x : b) x = static_cast<Sym>(rng.index(alphabet));
    const std::size_t exact = edit_distance(a, b);
    std::vector<std::size_t> limits = {0, exact / 2, exact, exact + 1,
                                       exact + 17, 1 + rng.index(64)};
    if (exact > 0) limits.push_back(exact - 1);
    for (const std::size_t limit : limits) {
      const std::size_t want = (exact <= limit) ? exact : limit + 1;
      EXPECT_EQ(edit_distance_bounded(a, b, limit), want)
          << "|a|=" << a.size() << " |b|=" << b.size() << " limit=" << limit;
      EXPECT_EQ(edit_distance_bounded_reference(a, b, limit), want);
      BitMatcher matcher(a);
      ASSERT_TRUE(matcher.ok());
      EXPECT_EQ(matcher.bounded(b, limit), want)
          << "|a|=" << a.size() << " |b|=" << b.size() << " limit=" << limit;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitParallelProperty, ::testing::Range(0, 30));

TEST(BitParallel, MultiWordKnownValues) {
  // 3-word pattern with a known number of substitutions.
  std::vector<Sym> a(150);
  std::iota(a.begin(), a.end(), 0);
  std::vector<Sym> b = a;
  b[0] = 999;
  b[70] = 998;
  b[149] = 997;
  BitMatcher matcher(a);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ(matcher.bounded(b, 150), 3u);
  EXPECT_EQ(matcher.bounded(b, 3), 3u);
  EXPECT_EQ(matcher.bounded(b, 2), 3u);  // clamp at limit + 1
  EXPECT_EQ(matcher.bounded(a, 0), 0u);
}

TEST(BitParallel, AlphabetOverflowFallsBack) {
  // More distinct symbols than BitMatcher::kMaxAlphabet: the matcher
  // refuses and the router must still produce the reference answer.
  const std::size_t n = BitMatcher::kMaxAlphabet + 200;
  std::vector<Sym> a(n);
  std::iota(a.begin(), a.end(), 0);
  std::vector<Sym> b = a;
  b[5] = 1u << 30;
  b[n - 5] = (1u << 30) + 1;
  EXPECT_FALSE(BitMatcher(a).ok());
  EXPECT_EQ(edit_distance_bounded(a, b, 10), 2u);
  EXPECT_EQ(edit_distance_bounded(a, b, 1), 2u);
}

TEST(BitParallel, EmptyAndDegenerate) {
  const std::vector<Sym> empty;
  const std::vector<Sym> one = {42};
  EXPECT_EQ(edit_distance_bounded(empty, empty, 0), 0u);
  EXPECT_EQ(edit_distance_bounded(empty, one, 1), 1u);
  EXPECT_EQ(edit_distance_bounded(empty, one, 0), 1u);
  BitMatcher m(one);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.bounded(empty, 1), 1u);
  EXPECT_EQ(m.bounded(one, 0), 0u);
}

// -------------------- normalized-threshold alignment --------------------

TEST(NormalizedLimit, FractionalBoundaryRegression) {
  // 0.3 * 10 == 2.9999999999999996 in binary floating point: the seed's
  // size_t(eps * longest) floored it to 2 and rejected distance-3 pairs
  // that normalized_edit_distance(a, b) <= eps admits.
  EXPECT_EQ(normalized_limit(0.3, 10), 3u);
  std::vector<Sym> a(10);
  std::iota(a.begin(), a.end(), 0);
  std::vector<Sym> b = a;
  b[1] = 91;
  b[4] = 92;
  b[7] = 93;  // distance exactly 3, normalized 0.3
  ASSERT_EQ(edit_distance(a, b), 3u);
  EXPECT_LE(normalized_edit_distance(a, b), 0.3);
  EXPECT_TRUE(within_normalized(a, b, 0.3));
}

TEST(NormalizedLimit, AgreesWithNormalizedPredicate) {
  // Property: within_normalized must equal the normalized comparison for
  // random streams and eps values, including awkward fractions.
  Rng rng(2024);
  const double eps_values[] = {0.0, 0.05, 0.1, 0.15, 0.3, 0.7, 1.0, 1.5};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Sym> a(rng.index(40));
    std::vector<Sym> b(rng.index(40));
    for (auto& x : a) x = static_cast<Sym>(rng.index(6));
    for (auto& x : b) x = static_cast<Sym>(rng.index(6));
    const double eps = eps_values[rng.index(8)];
    EXPECT_EQ(within_normalized(a, b, eps),
              normalized_edit_distance(a, b) <= eps)
        << "|a|=" << a.size() << " |b|=" << b.size() << " eps=" << eps;
  }
}

TEST(NormalizedLimit, DefinitionHolds) {
  // normalized_limit(eps, L) is the largest d with double(d)/L <= eps.
  Rng rng(9);
  const double eps_values[] = {0.0, 0.03, 0.1, 0.25, 0.3, 0.9999, 1.0};
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t longest = 1 + rng.index(5000);
    const double eps = eps_values[rng.index(7)];
    const std::size_t d = normalized_limit(eps, longest);
    EXPECT_LE(static_cast<double>(d) / static_cast<double>(longest), eps);
    if (d < longest) {
      EXPECT_GT(static_cast<double>(d + 1) / static_cast<double>(longest),
                eps);
    }
  }
}

}  // namespace
}  // namespace kizzle::dist
