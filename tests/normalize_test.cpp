#include <gtest/gtest.h>

#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::text {
namespace {

TEST(Normalize, RawStripsWhitespaceAndQuotes) {
  EXPECT_EQ(normalize_raw("var a = \"x y\";\n"), "vara=xy;");
  EXPECT_EQ(normalize_raw("'q'\t"), "q");
}

TEST(Normalize, RawKeepsEverythingElse) {
  EXPECT_EQ(normalize_raw("a+b#c"), "a+b#c");
}

TEST(Normalize, JsEqualsRawOnCommentFreeSource) {
  // The property the signature compiler relies on: token reconstruction
  // equals byte-level stripping when there are no comments.
  const char* src = R"JS(
var buffer = "";
var delim = "y6";
function collect(text) { buffer += text; }
collect("47 y642y6100y6");
pieces = buffer.split(delim);
)JS";
  EXPECT_EQ(normalize_js(src), normalize_raw(src));
}

TEST(Normalize, JsDropsComments) {
  const std::string with = "var a = 1; // comment\nvar b = 2;";
  EXPECT_EQ(normalize_js(with), "vara=1;varb=2;");
}

TEST(Normalize, JsStripsWhitespaceInsideStrings) {
  EXPECT_EQ(normalize_js("x(\"a b\")"), "x(ab)");
}

TEST(Normalize, DocumentNormalizesInlineScripts) {
  const std::string doc =
      "<html><script>var a = 1;</script><script>b( \"x\" );</script></html>";
  EXPECT_EQ(normalize_document(doc), "vara=1;b(x);");
}

// ------------------------ cross-channel semantics ------------------------
//
// The whole-document channel (DesktopScanner-style scans of
// normalize_document output) and the per-script channel (BrowserGate runs
// normalize_js on each block) must agree on what text exists. The old '\n'
// block joiner broke that: '\n' is a byte normalization strips, so the
// document text was not a fixed point of normalize_raw — re-normalizing it
// glued adjacent blocks, producing seam-spanning text one channel could
// match and the other could never see. The pinned semantics: document text
// == the per-script texts concatenated, stable under every normalizer.

TEST(Normalize, DocumentIsConcatenationOfScriptChannelTexts) {
  const std::string s1 = "var a = 1;";
  const std::string s2 = "b( \"x\" );";
  const std::string doc =
      "<html><script>" + s1 + "</script><p>no</p><script>" + s2 +
      "</script></html>";
  EXPECT_EQ(normalize_document(doc), normalize_js(s1) + normalize_js(s2));
}

TEST(Normalize, DocumentTextIsAFixedPointOfRawNormalization) {
  const std::string doc =
      "<html><script>var a = 1;</script><script>b( \"x\" );</script></html>";
  const std::string text = normalize_document(doc);
  EXPECT_EQ(normalize_raw(text), text);
  EXPECT_EQ(normalize_js(text), text);
}

TEST(Normalize, SeamMatchesAgreeAcrossRenormalization) {
  // A signature spanning the block seam ("1;b(") sees the same document
  // text whether a channel scans normalize_document output directly or
  // re-normalizes it first. Under the old '\n' joiner the direct scan text
  // was "vara=1;\nb(x);" and the re-normalized text "vara=1;b(x);" — the
  // same signature matched in one representation and not the other.
  const std::string doc =
      "<html><script>var a = 1;</script><script>b( \"x\" );</script></html>";
  const std::string direct = normalize_document(doc);
  const std::string renormalized = normalize_raw(direct);
  EXPECT_EQ(direct.find("1;b("), renormalized.find("1;b("));
  EXPECT_NE(direct.find("1;b("), std::string::npos);
}

TEST(Normalize, DocumentSkipsExternalScripts) {
  const std::string doc =
      "<script src=\"e.js\"> </script><script>kept()</script>";
  EXPECT_EQ(normalize_document(doc), "kept()");
}

// Property sweep: for random comment-free token soup, normalize_js and
// normalize_raw agree.
class NormalizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(NormalizeProperty, JsMatchesRawOnRandomSource) {
  kizzle::Rng rng(static_cast<std::uint64_t>(GetParam()));
  static const std::vector<std::string> kPieces = {
      "var ",      "x",   " = ",  "\"str ing\"", ";",   "\n",  "f(",
      "42",        ")",   "{",    "}",           "+",   "if(", "a<b",
      "'qu ote'",  "[",   "]",    "0x1F",        ".",   ",",   "function ",
      "return ",   "y2",  "===",  "!(",          "), ", " ",   "\t",
  };
  std::string src;
  for (int i = 0; i < 200; ++i) src += rng.pick(kPieces);
  EXPECT_EQ(normalize_js(src), normalize_raw(src)) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace kizzle::text
