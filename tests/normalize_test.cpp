#include <gtest/gtest.h>

#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::text {
namespace {

TEST(Normalize, RawStripsWhitespaceAndQuotes) {
  EXPECT_EQ(normalize_raw("var a = \"x y\";\n"), "vara=xy;");
  EXPECT_EQ(normalize_raw("'q'\t"), "q");
}

TEST(Normalize, RawKeepsEverythingElse) {
  EXPECT_EQ(normalize_raw("a+b#c"), "a+b#c");
}

TEST(Normalize, JsEqualsRawOnCommentFreeSource) {
  // The property the signature compiler relies on: token reconstruction
  // equals byte-level stripping when there are no comments.
  const char* src = R"JS(
var buffer = "";
var delim = "y6";
function collect(text) { buffer += text; }
collect("47 y642y6100y6");
pieces = buffer.split(delim);
)JS";
  EXPECT_EQ(normalize_js(src), normalize_raw(src));
}

TEST(Normalize, JsDropsComments) {
  const std::string with = "var a = 1; // comment\nvar b = 2;";
  EXPECT_EQ(normalize_js(with), "vara=1;varb=2;");
}

TEST(Normalize, JsStripsWhitespaceInsideStrings) {
  EXPECT_EQ(normalize_js("x(\"a b\")"), "x(ab)");
}

TEST(Normalize, DocumentNormalizesInlineScripts) {
  const std::string doc =
      "<html><script>var a = 1;</script><script>b( \"x\" );</script></html>";
  EXPECT_EQ(normalize_document(doc), "vara=1;\nb(x);");
}

TEST(Normalize, DocumentSkipsExternalScripts) {
  const std::string doc =
      "<script src=\"e.js\"> </script><script>kept()</script>";
  EXPECT_EQ(normalize_document(doc), "kept()");
}

// Property sweep: for random comment-free token soup, normalize_js and
// normalize_raw agree.
class NormalizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(NormalizeProperty, JsMatchesRawOnRandomSource) {
  kizzle::Rng rng(static_cast<std::uint64_t>(GetParam()));
  static const std::vector<std::string> kPieces = {
      "var ",      "x",   " = ",  "\"str ing\"", ";",   "\n",  "f(",
      "42",        ")",   "{",    "}",           "+",   "if(", "a<b",
      "'qu ote'",  "[",   "]",    "0x1F",        ".",   ",",   "function ",
      "return ",   "y2",  "===",  "!(",          "), ", " ",   "\t",
  };
  std::string src;
  for (int i = 0; i < 200; ++i) src += rng.pick(kPieces);
  EXPECT_EQ(normalize_js(src), normalize_raw(src)) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace kizzle::text
