#include <gtest/gtest.h>

#include <initializer_list>
#include <memory>
#include <utility>

#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "support/rng.h"
#include "text/lexer.h"
#include "unpack/token_util.h"
#include "unpack/unpackers.h"

namespace kizzle::unpack {
namespace {

using kitgen::AnglerPackerState;
using kitgen::CveEntry;
using kitgen::KitFamily;
using kitgen::NuclearPackerState;
using kitgen::PayloadSpec;
using kitgen::PluginTarget;
using kitgen::RigPackerState;
using kitgen::SweetOrangePackerState;
using kitgen::pack_angler;
using kitgen::pack_nuclear;
using kitgen::pack_rig;
using kitgen::pack_sweet_orange;
using kitgen::payload_text;

std::string sample_payload(KitFamily family) {
  PayloadSpec spec;
  spec.family = family;
  spec.cves = kitgen::kit_info(family).cves;
  spec.av_check = kitgen::kit_info(family).av_check;
  spec.urls = {"http://ex1.gate-a.biz/serv", "http://ex2.cdn-b.ru/track"};
  return payload_text(spec);
}

// ------------------------------ helpers ------------------------------

TEST(TokenUtil, JsUnescape) {
  EXPECT_EQ(js_unescape(R"("a\"b")"), "a\"b");
  EXPECT_EQ(js_unescape(R"('a\'b')"), "a'b");
  EXPECT_EQ(js_unescape(R"("a\\b")"), "a\\b");
  EXPECT_EQ(js_unescape(R"("a\nb")"), "a\nb");
  EXPECT_EQ(js_unescape("\"plain\""), "plain");
  EXPECT_EQ(js_unescape("noquotes"), "noquotes");
}

TEST(TokenUtil, StringAssignments) {
  const auto tokens = text::lex(R"(var a="x"; b = "y"; c=f("z");)");
  const auto map = string_assignments(tokens);
  EXPECT_EQ(map.at("a"), "x");
  EXPECT_EQ(map.at("b"), "y");
  EXPECT_FALSE(map.contains("c"));  // call result, not a string literal
}

TEST(TokenUtil, FirstAssignmentWins) {
  const auto tokens = text::lex(R"(var a="first"; a="second";)");
  EXPECT_EQ(string_assignments(tokens).at("a"), "first");
}

TEST(TokenUtil, NumericAssignments) {
  const auto tokens = text::lex("var n=47; var h=0x1F; var s=\"x\";");
  const auto map = numeric_assignments(tokens);
  EXPECT_EQ(map.at("n"), 47);
  EXPECT_EQ(map.at("h"), 31);
  EXPECT_FALSE(map.contains("s"));
}

TEST(TokenUtil, LooksLikeScript) {
  EXPECT_TRUE(looks_like_script(sample_payload(KitFamily::Rig)));
  EXPECT_FALSE(looks_like_script("short"));
  EXPECT_FALSE(looks_like_script(std::string(200, '#')));
}

// --------------------------- round trips ----------------------------
// pack(payload) then unpack must reproduce the payload byte-for-byte,
// for every kit, across per-sample randomization seeds.

class RoundTrip : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 7919 + 11};
};

TEST_P(RoundTrip, Rig) {
  const std::string payload = sample_payload(KitFamily::Rig);
  RigPackerState st;
  st.delim = GetParam() % 2 ? "y6" : "qX3";
  const std::string packed = pack_rig(payload, st, rng_);
  const auto result = unpack_script(packed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->unpacker, "rig");
  EXPECT_EQ(result->text, payload);
}

TEST_P(RoundTrip, NuclearDecimal) {
  const std::string payload = sample_payload(KitFamily::Nuclear);
  NuclearPackerState st;
  st.strip = GetParam() % 2 ? "#FFFFFF" : "UluN";
  st.mode = GetParam() % 2 ? kitgen::ObfuscationMode::InsertOnce
                           : kitgen::ObfuscationMode::Interleave;
  const std::string packed = pack_nuclear(payload, st, rng_);
  const auto result = unpack_script(packed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->unpacker, "nuclear");
  EXPECT_EQ(result->text, payload);
}

TEST_P(RoundTrip, NuclearHexRadix) {
  // The 8/12 "semantic change": index encoding flips to hex.
  const std::string payload = sample_payload(KitFamily::Nuclear);
  NuclearPackerState st;
  st.radix = 16;
  const std::string packed = pack_nuclear(payload, st, rng_);
  const auto result = unpack_script(packed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->text, payload);
}

TEST_P(RoundTrip, Angler) {
  const std::string payload = sample_payload(KitFamily::Angler);
  AnglerPackerState st;
  st.offset = 40 + GetParam() * 3;
  const std::string packed = pack_angler(payload, st, rng_);
  const auto result = unpack_script(packed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->unpacker, "angler");
  EXPECT_EQ(result->text, payload);
}

TEST_P(RoundTrip, SweetOrange) {
  const std::string payload = sample_payload(KitFamily::SweetOrange);
  SweetOrangePackerState st;
  if (GetParam() % 2) {
    st.positions = {11, 16, 12, 17, 13, 10, 15, 14};
    st.key = "Zb4Ty9Qn";
  }
  const std::string packed = pack_sweet_orange(payload, st, rng_);
  const auto result = unpack_script(packed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->unpacker, "sweet_orange");
  EXPECT_EQ(result->text, payload);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(0, 10));

// ------------------------- negative behaviour -------------------------

TEST(Unpackers, BenignCodeDoesNotUnpack) {
  const char* benign = R"JS(
function track(u){var img=new Image(1,1);img.src=u;return img}
var config={delay:300,retries:3,endpoint:"/api/v2/track",enabled:true};
function init(){if(document.addEventListener){document.addEventListener(
"DOMContentLoaded",function(){track(config.endpoint)},false)}}
init();
)JS";
  EXPECT_FALSE(unpack_script(benign).has_value());
}

TEST(Unpackers, TruncatedRigSampleFailsGracefully) {
  Rng rng(3);
  const std::string payload = sample_payload(KitFamily::Rig);
  RigPackerState st;
  std::string packed = pack_rig(payload, st, rng);
  packed.resize(packed.size() / 3);  // heavy truncation
  const auto result = unpack_script(packed);
  // Either fails or decodes a prefix; it must not throw.
  if (result) {
    EXPECT_EQ(result->unpacker, "rig");
  }
}

TEST(Unpackers, EmptyInput) {
  EXPECT_FALSE(unpack_script("").has_value());
}

// ----------------------- hostile charcode streams -----------------------
//
// The RIG decoder parses delimiter-separated charcode pieces. It used to
// run them through std::atoi (undefined behavior on overflow, silent
// garbage on junk) and narrow through a char cast; these pin the
// std::from_chars replacement: overflow digits, out-of-range and negative
// codes reject the unpack, empty pieces are skipped.

// A payload long and token-rich enough for looks_like_script().
const char kCharcodePayload[] =
    "var a=1;var b=2;var c=3;var d=4;"
    "function go(){return a+b+c+d;}go();var done=go();";

std::string rig_encode(std::string_view payload) {
  std::string enc;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (i != 0) enc += "y6";
    enc += std::to_string(static_cast<unsigned char>(payload[i]));
  }
  return enc;
}

std::string rig_style_script(std::string_view encoded) {
  return "var B=\"\";var D=\"y6\";function C(t){B+=t;}\nC(\"" +
         std::string(encoded) +
         "\");\nvar P=B.split(D);var R=\"\";"
         "for(var i=0;i<P.length;i++){R+=String.fromCharCode(P[i]);}";
}

TEST(Unpackers, RigDecodesHandBuiltCharcodeStream) {
  const auto result = unpack_script(rig_style_script(rig_encode(kCharcodePayload)));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->unpacker, "rig");
  EXPECT_EQ(result->text, kCharcodePayload);
}

TEST(Unpackers, RigRejectsOverflowingCharcodes) {
  // Far past INT_MAX: std::atoi was UB here and could "decode" whatever
  // the overflow happened to produce.
  const std::string encoded =
      rig_encode(kCharcodePayload) + "y699999999999999999999";
  EXPECT_FALSE(unpack_script(rig_style_script(encoded)).has_value());
}

TEST(Unpackers, RigRejectsOutOfRangeCharcodes) {
  const std::string encoded = rig_encode(kCharcodePayload) + "y6999";
  EXPECT_FALSE(unpack_script(rig_style_script(encoded)).has_value());
}

TEST(Unpackers, RigRejectsNegativeCharcodes) {
  const std::string encoded = rig_encode(kCharcodePayload) + "y6-12";
  EXPECT_FALSE(unpack_script(rig_style_script(encoded)).has_value());
}

TEST(Unpackers, RigRejectsNonNumericCharcodePieces) {
  const std::string encoded = rig_encode(kCharcodePayload) + "y612junk";
  EXPECT_FALSE(unpack_script(rig_style_script(encoded)).has_value());
}

TEST(Unpackers, RigSkipsEmptyCharcodePieces) {
  // Doubled and trailing delimiters produce empty pieces; they carry no
  // charcode and are skipped, not decoded as zero bytes.
  std::string encoded = rig_encode(kCharcodePayload);
  const std::size_t mid = encoded.find("y6");
  ASSERT_NE(mid, std::string::npos);
  encoded.insert(mid, "y6");  // "..y6y6.." around the first delimiter
  encoded += "y6";            // trailing delimiter
  const auto result = unpack_script(rig_style_script(encoded));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->text, kCharcodePayload);
}

TEST(Unpackers, NoCrossFire) {
  // Each packed format must be decoded by exactly its own unpacker.
  Rng rng(17);
  const auto& unpackers = default_unpackers();
  struct Case {
    std::string packed;
    std::string_view expect;
  };
  std::vector<Case> cases;
  cases.push_back({pack_rig(sample_payload(KitFamily::Rig), {}, rng), "rig"});
  cases.push_back(
      {pack_nuclear(sample_payload(KitFamily::Nuclear), {}, rng), "nuclear"});
  cases.push_back(
      {pack_angler(sample_payload(KitFamily::Angler), {}, rng), "angler"});
  cases.push_back({pack_sweet_orange(sample_payload(KitFamily::SweetOrange),
                                     {}, rng),
                   "sweet_orange"});
  for (const Case& c : cases) {
    const auto tokens = text::lex(c.packed);
    for (const auto& u : unpackers) {
      const auto result = u->try_unpack(tokens);
      if (u->name() == c.expect) {
        EXPECT_TRUE(result.has_value()) << u->name();
      } else {
        EXPECT_FALSE(result.has_value())
            << u->name() << " cross-fired on " << c.expect;
      }
    }
  }
}

TEST(Unpackers, FixpointSingleLayerEqualsUnpack) {
  Rng rng(23);
  const std::string payload = sample_payload(KitFamily::Angler);
  const std::string packed = pack_angler(payload, {}, rng);
  const auto result = unpack_fixpoint(packed);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->text, payload);
}

TEST(Unpackers, FixpointPeelsTwoLayers) {
  // RIG wrapped around Angler: the fixpoint driver must reach the core.
  Rng rng(29);
  const std::string payload = sample_payload(KitFamily::Angler);
  const std::string inner = pack_angler(payload, {}, rng);
  const std::string outer = pack_rig(inner, {}, rng);
  const auto result = unpack_fixpoint(outer);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->text, payload);
  EXPECT_EQ(result->unpacker, "angler");  // the innermost unpacker fired last
  EXPECT_EQ(result->layers, 2);
  EXPECT_FALSE(result->budget_exhausted);
  EXPECT_FALSE(result->cycle_detected);
}

// ----------------------- fixpoint hardening -----------------------
//
// The shipped decoders strictly shrink their input (charcode/hex
// encodings spend several source bytes per output byte), so a genuine
// quine cannot be built from them — adversarial layer behavior is
// injected through the registry seam instead.

// Decodes any input whose first token is `trigger` to the fixed `output`.
class RewriteUnpacker : public Unpacker {
 public:
  RewriteUnpacker(std::string trigger, std::string output)
      : trigger_(std::move(trigger)), output_(std::move(output)) {}
  std::string_view name() const override { return "rewrite"; }
  bool plausible(std::span<const text::Token> tokens) const override {
    return !tokens.empty() && tokens.front().text == trigger_;
  }
  std::optional<std::string> try_unpack(
      std::span<const text::Token> tokens) const override {
    if (!plausible(tokens)) return std::nullopt;
    return output_;
  }

 private:
  std::string trigger_;
  std::string output_;
};

std::vector<std::unique_ptr<Unpacker>> registry(
    std::initializer_list<std::pair<const char*, const char*>> rules) {
  std::vector<std::unique_ptr<Unpacker>> v;
  for (const auto& [trigger, output] : rules) {
    v.push_back(std::make_unique<RewriteUnpacker>(trigger, output));
  }
  return v;
}

TEST(Unpackers, FixpointStopsOnSelfReproducingLayer) {
  // QUINE decodes to itself: without repeated-state detection the loop
  // would grind through the whole layer cap re-decoding the same bytes.
  const auto quine = registry({{"QUINE", "QUINE"}});
  UnpackLimits limits;
  limits.max_layers = 1000;
  const auto result = unpack_fixpoint("QUINE", limits, quine);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->cycle_detected);
  EXPECT_EQ(result->text, "QUINE");
  EXPECT_EQ(result->layers, 1);  // detected at the first re-decode
}

TEST(Unpackers, FixpointStopsOnTwoStateCycle) {
  // PING -> PONG -> PING: the repeated state is two layers back, which a
  // simple previous-layer comparison would miss.
  const auto pingpong = registry({{"PING", "PONG"}, {"PONG", "PING"}});
  UnpackLimits limits;
  limits.max_layers = 1000;
  const auto result = unpack_fixpoint("PING", limits, pingpong);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->cycle_detected);
  EXPECT_LE(result->layers, 2);
}

TEST(Unpackers, FixpointEnforcesTotalByteBudget) {
  // Each GROW layer decodes to ~64 KiB; a 100 KiB cumulative budget must
  // stop the onion after the first layer instead of decoding all ten.
  const std::string big = "GROW " + std::string(std::size_t{64} << 10, 'a');
  const auto grower = registry({{"GROW", big.c_str()}});
  UnpackLimits limits;
  limits.max_layers = 10;
  limits.max_total_bytes = std::size_t{100} << 10;
  const auto result = unpack_fixpoint("GROW x", limits, grower);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->budget_exhausted);
  EXPECT_FALSE(result->cycle_detected);
  EXPECT_EQ(result->layers, 1);
  EXPECT_EQ(result->text, big);  // the last in-budget layer is kept
}

TEST(Unpackers, FixpointRejectsFirstLayerOverBudget) {
  const std::string big = "x" + std::string(std::size_t{64} << 10, 'a');
  const auto grower = registry({{"GROW", big.c_str()}});
  UnpackLimits limits;
  limits.max_total_bytes = 1 << 10;  // 1 KiB: the first decode busts it
  const auto result = unpack_fixpoint("GROW x", limits, grower);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->budget_exhausted);
  EXPECT_TRUE(result->text.empty());  // over-budget bytes are not returned
}

TEST(Unpackers, FixpointLayerCapStillHolds) {
  // A -> B -> C -> D ... with max_layers 2: stop after two decodes, no
  // cycle, no budget breach.
  const auto chain = registry({{"A", "B b"}, {"B", "C c"}, {"C", "D d"}});
  UnpackLimits limits;
  limits.max_layers = 2;
  const auto result = unpack_fixpoint("A a", limits, chain);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->layers, 2);
  EXPECT_EQ(result->text, "C c");
  EXPECT_FALSE(result->budget_exhausted);
  EXPECT_FALSE(result->cycle_detected);
}

}  // namespace
}  // namespace kizzle::unpack
