// Robustness sweeps: random and adversarial byte soup through every
// input-facing surface. Drive-by telemetry is hostile input by definition
// (§IV: truncated captures, malformed pages); nothing here may crash,
// hang, or throw anything but the documented exception types.
#include <gtest/gtest.h>

#include "match/pattern.h"
#include "support/rng.h"
#include "text/html.h"
#include "text/lexer.h"
#include "text/normalize.h"
#include "unpack/unpackers.h"

namespace kizzle {
namespace {

std::string random_bytes(Rng& rng, std::size_t n) {
  std::string out(n, '\0');
  for (char& c : out) {
    c = static_cast<char>(rng.uniform(1, 255));  // no NUL: std::string APIs
  }
  return out;
}

std::string random_js_soup(Rng& rng, std::size_t n) {
  static constexpr std::string_view kSoup =
      "abcxyz019 \t\n\"'\\(){}[];,.+-*/<>=!&|^~?:#@`%$_";
  return rng.string_over(kSoup, n);
}

class FuzzSweep : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 40503 + 7};
};

TEST_P(FuzzSweep, TolerantLexerNeverThrows) {
  for (int i = 0; i < 40; ++i) {
    const std::string input = (i % 2 == 0)
                                  ? random_bytes(rng_, rng_.index(600))
                                  : random_js_soup(rng_, rng_.index(600));
    std::vector<text::Token> tokens;
    EXPECT_NO_THROW(tokens = text::lex(input));
    // Every token's text must be a slice of the input at its offset.
    for (const auto& t : tokens) {
      ASSERT_LE(t.offset + t.text.size(), input.size());
      EXPECT_EQ(input.substr(t.offset, t.text.size()), t.text);
    }
  }
}

TEST_P(FuzzSweep, NormalizersNeverThrow) {
  for (int i = 0; i < 40; ++i) {
    const std::string input = random_js_soup(rng_, rng_.index(800));
    EXPECT_NO_THROW(text::normalize_raw(input));
    EXPECT_NO_THROW(text::normalize_js(input));
    EXPECT_NO_THROW(text::normalize_document(input));
  }
}

TEST_P(FuzzSweep, HtmlExtractorNeverThrows) {
  static constexpr std::string_view kTagSoup =
      "<>scriptSCRIPT/ =\"'abc srcx\n\t";
  for (int i = 0; i < 40; ++i) {
    std::string input;
    for (std::size_t j = 0; j < rng_.index(400); ++j) {
      input.push_back(kTagSoup[rng_.index(kTagSoup.size())]);
    }
    EXPECT_NO_THROW(text::extract_scripts(input));
    EXPECT_NO_THROW(text::inline_script_text(input));
  }
}

TEST_P(FuzzSweep, UnpackersRejectGarbageGracefully) {
  for (int i = 0; i < 20; ++i) {
    const std::string input = random_js_soup(rng_, rng_.index(1000));
    std::optional<unpack::UnpackResult> result;
    EXPECT_NO_THROW(result = unpack::unpack_script(input));
    EXPECT_FALSE(result.has_value());
    EXPECT_NO_THROW(unpack::unpack_fixpoint(input));
  }
}

TEST_P(FuzzSweep, PatternCompileEitherWorksOrThrowsPatternError) {
  static constexpr std::string_view kRegexSoup = "ab[](){}\\*+?.|^$-,0-9kv<>";
  for (int i = 0; i < 60; ++i) {
    std::string source;
    for (std::size_t j = 0; j < 1 + rng_.index(20); ++j) {
      source.push_back(kRegexSoup[rng_.index(kRegexSoup.size())]);
    }
    try {
      const auto p = match::Pattern::compile(source);
      // If it compiles, searching must terminate and not throw.
      EXPECT_NO_THROW(p.search(random_js_soup(rng_, 200)));
    } catch (const match::PatternError&) {
      // expected for malformed sources
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace kizzle
