// Tests for the shared Aho–Corasick literal prefilter (match/prefilter.h)
// and the prefiltered scan paths built on it: unit behavior of the
// automaton, fallback semantics for patterns with no usable literal, and
// differential (oracle) equality between the prefiltered scanner and the
// brute-force per-pattern search over randomized kitgen samples.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "av/av_engine.h"
#include "core/deploy.h"
#include "kitgen/families.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "match/pattern.h"
#include "match/prefilter.h"
#include "match/scanner.h"
#include "support/rng.h"
#include "text/normalize.h"

namespace kizzle::match {
namespace {

// ---------------------------- automaton unit ----------------------------

TEST(LiteralPrefilter, ReportsOnlyPresentLiterals) {
  LiteralPrefilter pf;
  pf.add(0, "fromCharCode");
  pf.add(1, "evalstring");
  pf.add(2, "document");
  pf.build();
  const auto c = pf.candidates("xx fromCharCode yy document zz");
  EXPECT_EQ(c, (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(pf.candidates("nothing relevant").empty());
}

TEST(LiteralPrefilter, FindsOverlappingAndSuffixLiterals) {
  // "bcd" and "cd" end inside the "abcd" occurrence: suffix-link outputs.
  LiteralPrefilter pf;
  pf.add(0, "abcd");
  pf.add(1, "bcd");
  pf.add(2, "cd");
  pf.add(3, "abce");
  pf.build();
  EXPECT_EQ(pf.candidates("xxabcdxx"), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(pf.candidates("xxcdxx"), (std::vector<std::size_t>{2}));
}

TEST(LiteralPrefilter, SharedLiteralYieldsAllIds) {
  LiteralPrefilter pf;
  pf.add(0, "needle");
  pf.add(1, "needle");
  pf.add(2, "other");
  pf.build();
  EXPECT_EQ(pf.candidates("a needle b"), (std::vector<std::size_t>{0, 1}));
}

TEST(LiteralPrefilter, FallbackIdsAreAlwaysCandidates) {
  LiteralPrefilter pf;
  pf.add(0, "literal_one");
  pf.add(1, "");  // no usable literal
  pf.add(2, "");
  pf.add(3, "literal_two");
  pf.build();
  EXPECT_EQ(pf.fallback_count(), 2u);
  EXPECT_EQ(pf.candidates(""), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(pf.candidates("has literal_two here"),
            (std::vector<std::size_t>{1, 2, 3}));
}

TEST(LiteralPrefilter, RepeatedOccurrencesAreDeduplicated) {
  LiteralPrefilter pf;
  pf.add(0, "dup");
  pf.build();
  EXPECT_EQ(pf.candidates("dup dup dup dup"), (std::vector<std::size_t>{0}));
}

TEST(LiteralPrefilter, RebuildAfterAddExtendsTheAutomaton) {
  LiteralPrefilter pf;
  pf.add(0, "first");
  pf.build();
  EXPECT_EQ(pf.candidates("first second"), (std::vector<std::size_t>{0}));
  pf.add(1, "second");
  pf.build();
  EXPECT_EQ(pf.candidates("first second"), (std::vector<std::size_t>{0, 1}));
}

TEST(LiteralPrefilter, CandidatesBeforeBuildThrows) {
  LiteralPrefilter pf;
  pf.add(0, "abc");
  EXPECT_THROW(pf.candidates("abc"), std::logic_error);
}

TEST(LiteralPrefilter, RebuildIsIdempotent) {
  // Repeated build() calls (with and without interleaved add()s) must not
  // perturb any derived table — in particular the fallback list must stay
  // sorted and deduplicated, never re-appended.
  LiteralPrefilter pf;
  pf.add(3, "");
  pf.add(0, "alpha");
  pf.add(1, "");
  pf.build();
  EXPECT_EQ(pf.fallback_ids(), (std::vector<std::size_t>{1, 3}));
  pf.build();  // no adds in between
  pf.build();
  EXPECT_EQ(pf.fallback_ids(), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(pf.candidates("alpha"), (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(pf.candidates("beta"), (std::vector<std::size_t>{1, 3}));

  pf.add(2, "");
  pf.build();
  pf.build();
  EXPECT_EQ(pf.fallback_ids(), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(pf.candidates("alpha"), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(LiteralPrefilter, IncrementalRebuildEqualsFreshBuild) {
  // Grow one automaton across several build() generations; a second one
  // gets the same final registration set in one go. Candidate sets must
  // be byte-identical on a variety of texts.
  const std::vector<std::pair<std::size_t, std::string>> regs = {
      {0, "fromCharCode"}, {1, ""},      {2, "document"}, {3, "eval"},
      {4, ""},             {5, "Code"},  {6, "fromChar"}, {7, "xyz"},
  };
  LiteralPrefilter grown;
  std::size_t at = 0;
  for (const std::size_t stop : std::vector<std::size_t>{2, 3, 6, regs.size()}) {
    for (; at < stop; ++at) grown.add(regs[at].first, regs[at].second);
    grown.build();
  }
  LiteralPrefilter fresh;
  for (const auto& [id, lit] : regs) fresh.add(id, lit);
  fresh.build();

  const std::vector<std::string> texts = {
      "", "fromCharCode", "document.eval", "only Code here", "xyzxyz",
      "fromChar and then Code", "nothing relevant at all"};
  EXPECT_EQ(grown.fallback_ids(), fresh.fallback_ids());
  for (const std::string& t : texts) {
    EXPECT_EQ(grown.candidates(t), fresh.candidates(t)) << t;
  }
}

// ------------------------- fallback via Scanner -------------------------

TEST(ScannerPrefilter, PatternsWithoutUsableLiteralStillMatch) {
  Scanner scanner;
  // None of these yields a required literal (>= 3 chars):
  scanner.add("classes", Pattern::compile("[0-9]+[a-z]+"));  // pure classes
  scanner.add("short", Pattern::compile("ab"));              // 2-char literal
  scanner.add("split", Pattern::compile("a.c"));             // runs of 1
  scanner.add("star", Pattern::compile(".+xy?"));            // nothing fixed
  for (std::size_t i = 0; i < scanner.size(); ++i) {
    EXPECT_TRUE(scanner.pattern(i).required_literal().empty()) << i;
  }
  const auto hits = scanner.scan("42z ab abc x");
  ASSERT_EQ(hits.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(hits[i].signature_index, i);
  }
}

TEST(ScannerPrefilter, AnchoredPatternBudgetAccountingMatchesBruteForce) {
  // ^-anchored pattern with a usable literal ("yyy") and catastrophic
  // backtracking. Literal absent: both paths must skip the VM entirely
  // (prefilter drops the candidate; search()'s anchored branch
  // quick-rejects) and charge nothing. Literal present: both run the VM
  // and both charge the budget.
  Scanner scanner;
  scanner.add("anchored", Pattern::compile("^(x+x+)+yyy"));
  const std::string xs(2048, 'x');

  EXPECT_TRUE(scanner.scan(xs).empty());
  EXPECT_TRUE(scanner.scan_brute_force(xs).empty());
  EXPECT_EQ(scanner.budget_exceeded_count(), 0u);

  const std::string with_literal = xs + "zyyy";  // literal present, no match
  EXPECT_TRUE(scanner.scan(with_literal).empty());
  const std::uint64_t mid = scanner.budget_exceeded_count();
  EXPECT_TRUE(scanner.scan_brute_force(with_literal).empty());
  EXPECT_EQ(scanner.budget_exceeded_count(), 2 * mid);
}

// ------------------------------ oracle ------------------------------

std::vector<std::string> kitgen_samples() {
  Rng rng(0xC0FFEE);
  std::vector<std::string> samples;
  for (int i = 0; i < 6; ++i) {
    kitgen::PayloadSpec spec;
    spec.family = kitgen::KitFamily::Nuclear;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Nuclear).cves;
    spec.av_check = true;
    spec.urls = {kitgen::make_landing_url(rng)};
    samples.push_back(text::normalize_raw(
        pack_nuclear(payload_text(spec), kitgen::NuclearPackerState{}, rng)));
    spec.family = kitgen::KitFamily::Rig;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
    samples.push_back(text::normalize_raw(
        pack_rig(payload_text(spec), kitgen::RigPackerState{}, rng)));
    spec.family = kitgen::KitFamily::Angler;
    spec.cves = kitgen::kit_info(kitgen::KitFamily::Angler).cves;
    samples.push_back(text::normalize_raw(
        pack_angler(payload_text(spec), kitgen::AnglerPackerState{}, rng)));
  }
  return samples;
}

// Signatures in the style the compiler emits — escaped literal chunks cut
// from real samples (some present, most from *other* samples) — plus
// class-heavy and fallback-only patterns.
void add_mixed_signatures(Scanner& scanner,
                          const std::vector<std::string>& samples) {
  Rng rng(0xBEEF);
  for (std::size_t s = 0; s < samples.size(); ++s) {
    const std::string& text = samples[s];
    for (int k = 0; k < 4; ++k) {
      const std::size_t len = 16 + rng.index(32);
      if (text.size() <= len) continue;
      const std::size_t at = rng.index(text.size() - len);
      scanner.add("chunk", Pattern::compile(
                               Pattern::escape(text.substr(at, len))));
    }
  }
  scanner.add("classes", Pattern::compile("[0-9]+[a-z]+[0-9]+"));
  scanner.add("short", Pattern::compile("ev"));
  scanner.add("mixed", Pattern::compile("fromCharCode[0-9a-z]*"));
  scanner.add("absent", Pattern::compile("never_going_to_show_up_anywhere"));
}

TEST(ScannerPrefilter, OracleHitSetEqualityOnKitgenSamples) {
  const auto samples = kitgen_samples();
  Scanner scanner;
  add_mixed_signatures(scanner, samples);
  for (const std::string& text : samples) {
    const std::uint64_t before = scanner.budget_exceeded_count();
    const auto fast = scanner.scan(text);
    const std::uint64_t mid = scanner.budget_exceeded_count();
    const auto brute = scanner.scan_brute_force(text);
    const std::uint64_t after = scanner.budget_exceeded_count();

    ASSERT_EQ(fast.size(), brute.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].signature_index, brute[i].signature_index);
      EXPECT_EQ(fast[i].begin, brute[i].begin);
      EXPECT_EQ(fast[i].end, brute[i].end);
    }
    // Identical budget-exceeded accounting on both paths.
    EXPECT_EQ(mid - before, after - mid);
  }
}

TEST(ScannerPrefilter, ScanBatchMatchesSequentialScan) {
  const auto samples = kitgen_samples();
  Scanner scanner;
  add_mixed_signatures(scanner, samples);
  const auto batched = scanner.scan_batch(samples);
  ASSERT_EQ(batched.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto single = scanner.scan(samples[i]);
    ASSERT_EQ(batched[i].size(), single.size()) << i;
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batched[i][j].signature_index, single[j].signature_index);
      EXPECT_EQ(batched[i][j].begin, single[j].begin);
      EXPECT_EQ(batched[i][j].end, single[j].end);
    }
  }
}

// --------------------------- av + deploy paths ---------------------------

TEST(AvEnginePrefilter, MatchesBruteForceReference) {
  av::ManualAvEngine engine;
  const std::vector<std::string> literals = {"alpha", "bet", "gamma77",
                                             "alp", "x"};
  for (std::size_t i = 0; i < literals.size(); ++i) {
    av::AvRelease r;
    r.day = static_cast<int>(i);
    r.family = kitgen::KitFamily::Nuclear;
    r.name = "AV.sig" + std::to_string(i);
    r.literal = literals[i];
    engine.schedule(r);
  }
  const std::vector<std::string> texts = {"has alpha here", "only bet",
                                          "gamma77 and alp", "xxxx", "none_",
                                          ""};
  for (int day = -1; day <= 5; ++day) {
    for (const std::string& t : texts) {
      // Brute-force reference: first scheduled release, literal-substring
      // matched, release-day gated.
      std::optional<std::string> expect;
      for (std::size_t i = 0; i < literals.size(); ++i) {
        if (static_cast<int>(i) > day) continue;
        if (t.find(literals[i]) != std::string::npos) {
          expect = "AV.sig" + std::to_string(i);
          break;
        }
      }
      const auto got = engine.match(day, t);
      ASSERT_EQ(got.has_value(), expect.has_value()) << day << " " << t;
      if (expect) EXPECT_EQ(got->name, *expect) << day << " " << t;
    }
  }
}

TEST(SignatureBundlePrefilter, FirstMatchEqualsLinearReference) {
  std::vector<core::DeployedSignature> sigs;
  const std::vector<std::string> patterns = {
      "landingpage[0-9]+", "fromCharCode", "[0-9]+[a-z]+",  // fallback
      "fromCharCode",  // duplicate: index order must win
      "substrabc"};
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    core::DeployedSignature s;
    s.name = "KZ.T." + std::to_string(i);
    s.family = "Test";
    s.issued_day = static_cast<int>(i);
    s.pattern = patterns[i];
    sigs.push_back(s);
  }
  const core::SignatureBundle bundle(sigs);
  const std::vector<std::string> texts = {
      "xx landingpage42", "xx fromCharCode yy", "123abc456", "substrabc",
      "nothing"};
  for (const std::string& t : texts) {
    std::optional<std::size_t> expect;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      if (Pattern::compile(patterns[i]).found_in(t)) {
        expect = i;
        break;
      }
    }
    EXPECT_EQ(bundle.match(t), expect) << t;
  }
}

}  // namespace
}  // namespace kizzle::match
