#include <gtest/gtest.h>

#include "text/html.h"

namespace kizzle::text {
namespace {

TEST(Html, ExtractsSingleInlineScript) {
  const auto blocks =
      extract_scripts("<html><body><script>var a=1;</script></body></html>");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].body, "var a=1;");
  EXPECT_FALSE(blocks[0].has_src);
}

TEST(Html, ExtractsMultipleScriptsInOrder) {
  const auto blocks = extract_scripts(
      "<script>first</script><p>x</p><script>second</script>");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].body, "first");
  EXPECT_EQ(blocks[1].body, "second");
}

TEST(Html, CaseInsensitiveTags) {
  const auto blocks = extract_scripts("<SCRIPT>x</SCRIPT>");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].body, "x");
}

TEST(Html, AttributesWithQuotedGt) {
  const auto blocks = extract_scripts(
      "<script type=\"a>b\">body</script>");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].body, "body");
}

TEST(Html, DetectsSrcAttribute) {
  const auto blocks =
      extract_scripts("<script src=\"http://x/y.js\"></script>");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_TRUE(blocks[0].has_src);
}

TEST(Html, ScriptTagNamePrefixNotConfused) {
  // <scripting> is not a script tag.
  const auto blocks = extract_scripts("<scripting>nope</scripting>");
  EXPECT_TRUE(blocks.empty());
}

TEST(Html, UnterminatedScriptTakesRest) {
  const auto blocks = extract_scripts("<script>var x=1;");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].body, "var x=1;");
}

TEST(Html, InlineScriptTextSkipsExternal) {
  const std::string text = inline_script_text(
      "<script src=\"a.js\"> </script><script>kept()</script>");
  EXPECT_EQ(text, "kept()");
}

TEST(Html, InlineScriptTextJoinsWithNewline) {
  const std::string text =
      inline_script_text("<script>a</script><script>b</script>");
  EXPECT_EQ(text, "a\nb");
}

TEST(Html, BodyOffsetsAreCorrect) {
  const std::string doc = "<p>x</p><script>BODY</script>";
  const auto blocks = extract_scripts(doc);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(doc.substr(blocks[0].offset, 4), "BODY");
}

TEST(Html, EmptyDocument) {
  EXPECT_TRUE(extract_scripts("").empty());
  EXPECT_EQ(inline_script_text("<html></html>"), "");
}

TEST(Html, ScriptWithLessThanInBody) {
  const auto blocks = extract_scripts("<script>if(a<b){c()}</script>");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].body, "if(a<b){c()}");
}

}  // namespace
}  // namespace kizzle::text
