#include <gtest/gtest.h>

#include "core/corpus.h"
#include "support/rng.h"

namespace kizzle::core {
namespace {

winnow::FingerprintSet fps(const std::string& text) {
  return winnow::FingerprintSet::of_text(text, winnow::Params{});
}

std::string random_text(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  return rng.string_over("abcdefghijklmnop(){};=.,+", n);
}

TEST(Corpus, LabelsExactMatchAtFullOverlap) {
  LabeledCorpus corpus;
  corpus.add_family("Nuclear", 0.7);
  const std::string payload = random_text(1, 2000);
  corpus.add_sample("Nuclear", payload);
  const LabelScore score = corpus.label(fps(payload));
  EXPECT_EQ(score.family, "Nuclear");
  EXPECT_DOUBLE_EQ(score.overlap, 1.0);
}

TEST(Corpus, RejectsBelowThreshold) {
  LabeledCorpus corpus;
  corpus.add_family("Nuclear", 0.7);
  corpus.add_sample("Nuclear", random_text(1, 2000));
  const LabelScore score = corpus.label(fps(random_text(2, 2000)));
  EXPECT_TRUE(score.family.empty());
  EXPECT_LT(score.overlap, 0.1);
}

TEST(Corpus, PicksBestFamily) {
  LabeledCorpus corpus;
  corpus.add_family("A", 0.5);
  corpus.add_family("B", 0.5);
  const std::string a_text = random_text(10, 2000);
  const std::string b_text = random_text(20, 2000);
  corpus.add_sample("A", a_text);
  corpus.add_sample("B", b_text);
  // Probe: mostly B with a dash of A.
  const std::string probe = b_text + a_text.substr(0, 300);
  EXPECT_EQ(corpus.label(fps(probe)).family, "B");
}

TEST(Corpus, FamilySpecificThresholds) {
  LabeledCorpus corpus;
  corpus.add_family("strict", 0.9);
  corpus.add_family("lax", 0.4);
  const std::string base = random_text(30, 2000);
  corpus.add_sample("strict", base);
  corpus.add_sample("lax", base);
  // A probe with ~60% overlap: below strict's bar, above lax's. Note both
  // families hold the same entry, so raw containment is equal — only the
  // thresholds differ.
  const std::string probe = base.substr(0, 1200) + random_text(31, 800);
  const LabelScore score = corpus.label(fps(probe));
  EXPECT_EQ(score.family, "lax");
}

TEST(Corpus, HistoryIsCapped) {
  LabeledCorpus corpus(winnow::Params{}, 3);
  corpus.add_family("A", 0.5);
  const std::string first = random_text(50, 1500);
  corpus.add_sample("A", first);
  for (int i = 0; i < 5; ++i) {
    corpus.add_sample("A", random_text(100 + i, 1500));
  }
  EXPECT_EQ(corpus.size("A"), 3u);
  // The first entry fell off: an exact probe of it no longer matches 1.0.
  EXPECT_LT(corpus.containment(fps(first), "A"), 0.5);
}

TEST(Corpus, DriftTrackingThroughAccumulation) {
  // The corpus follows gradual drift: day-2 text matches because day-1
  // text was added, even though it is far from the seed.
  LabeledCorpus corpus;
  corpus.add_family("A", 0.6);
  std::string v0 = random_text(60, 2000);
  corpus.add_sample("A", v0);
  std::string v1 = v0.substr(0, 1400) + random_text(61, 600);  // 70% of v0
  ASSERT_EQ(corpus.label(fps(v1)).family, "A");
  corpus.add_sample("A", v1);
  std::string v2 = v1.substr(600) + random_text(62, 600);  // 70% of v1
  EXPECT_EQ(corpus.label(fps(v2)).family, "A");
}

TEST(Corpus, UnknownFamilyThrows) {
  LabeledCorpus corpus;
  EXPECT_THROW(corpus.add_sample("nope", "text"), std::invalid_argument);
  EXPECT_THROW(corpus.containment(fps("x"), "nope"), std::invalid_argument);
}

TEST(Corpus, DuplicateFamilyThrows) {
  LabeledCorpus corpus;
  corpus.add_family("A", 0.5);
  EXPECT_THROW(corpus.add_family("A", 0.6), std::invalid_argument);
}

TEST(Corpus, ZeroCapRejected) {
  EXPECT_THROW(LabeledCorpus(winnow::Params{}, 0), std::invalid_argument);
}

TEST(Corpus, EmptyPrototypeNeverLabels) {
  LabeledCorpus corpus;
  corpus.add_family("A", 0.5);
  corpus.add_sample("A", random_text(70, 2000));
  EXPECT_TRUE(corpus.label(winnow::FingerprintSet{}).family.empty());
}

}  // namespace
}  // namespace kizzle::core
