#include <gtest/gtest.h>

#include "support/interner.h"
#include "text/abstraction.h"
#include "text/lexer.h"

namespace kizzle::text {
namespace {

std::vector<std::uint32_t> abstract(std::string_view src, Abstraction level,
                                    Interner& in) {
  const auto tokens = lex(src);
  return abstract_tokens(tokens, level, in);
}

TEST(Abstraction, IdentifierRandomizationIsInvisible) {
  // The whole point (§III.A): randomized variable names must not change
  // the abstract stream.
  Interner in;
  const auto a = abstract("var Euur1V = this[\"l9D\"](\"ev#333399al\");",
                          Abstraction::KeywordsAndPunct, in);
  const auto b = abstract("var jkb0hA = this[\"uqA\"](\"ev#ccff00al\");",
                          Abstraction::KeywordsAndPunct, in);
  EXPECT_EQ(a, b);
}

TEST(Abstraction, KeywordsRemainDistinct) {
  Interner in;
  const auto a = abstract("var x", Abstraction::KeywordsAndPunct, in);
  const auto b = abstract("return x", Abstraction::KeywordsAndPunct, in);
  EXPECT_NE(a, b);
}

TEST(Abstraction, PunctuatorsRemainDistinct) {
  Interner in;
  const auto a = abstract("a + b", Abstraction::KeywordsAndPunct, in);
  const auto b = abstract("a - b", Abstraction::KeywordsAndPunct, in);
  EXPECT_NE(a, b);
}

TEST(Abstraction, ClassOnlyMergesKeywords) {
  Interner in;
  const auto a = abstract("var x", Abstraction::ClassOnly, in);
  const auto b = abstract("return y", Abstraction::ClassOnly, in);
  EXPECT_EQ(a, b);
}

TEST(Abstraction, ClassOnlyKeepsClassesApart) {
  Interner in;
  const auto a = abstract("x", Abstraction::ClassOnly, in);
  const auto b = abstract("\"x\"", Abstraction::ClassOnly, in);
  const auto c = abstract("42", Abstraction::ClassOnly, in);
  EXPECT_NE(a[0], b[0]);
  EXPECT_NE(b[0], c[0]);
}

TEST(Abstraction, FullTextSeparatesEverything) {
  Interner in;
  const auto a = abstract("alpha", Abstraction::FullText, in);
  const auto b = abstract("beta", Abstraction::FullText, in);
  EXPECT_NE(a, b);
}

TEST(Abstraction, ClassTagCannotCollideWithRealToken) {
  // An identifier literally named "Identifier" must not merge with the
  // class tag for identifiers.
  Interner in;
  const auto tagged = abstract("someIdent", Abstraction::KeywordsAndPunct, in);
  const auto named = abstract("Identifier", Abstraction::FullText, in);
  EXPECT_NE(tagged[0], named[0]);
}

TEST(Abstraction, StreamLengthMatchesTokenCount) {
  Interner in;
  const auto tokens = lex("var a = 1 + 2;");
  const auto stream =
      abstract_tokens(tokens, Abstraction::KeywordsAndPunct, in);
  EXPECT_EQ(stream.size(), tokens.size());
}

TEST(Abstraction, SharedInternerIsStableAcrossCalls) {
  Interner in;
  const auto a1 = abstract("var x = \"s\";", Abstraction::KeywordsAndPunct, in);
  abstract("totally different tokens ( ) { }", Abstraction::KeywordsAndPunct,
           in);
  const auto a2 = abstract("var y = \"t\";", Abstraction::KeywordsAndPunct, in);
  EXPECT_EQ(a1, a2);
}

}  // namespace
}  // namespace kizzle::text
