#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/partitioned.h"
#include "support/interner.h"
#include "support/thread_pool.h"
#include "text/abstraction.h"
#include "text/lexer.h"

namespace kizzle::cluster {
namespace {

// Builds `reps` streams per family, with identifier noise only (so all
// streams of a family are eps-identical after abstraction).
std::vector<std::vector<std::uint32_t>> make_families(std::size_t families,
                                                      std::size_t reps,
                                                      Interner& in) {
  std::vector<std::vector<std::uint32_t>> streams;
  kizzle::Rng rng(4711);
  for (std::size_t f = 0; f < families; ++f) {
    // Family body differs structurally between families.
    std::string body;
    for (std::size_t i = 0; i <= f; ++i) {
      body += "function f" + std::to_string(i) + "(a){return a+" +
              std::to_string(i) + "}";
    }
    body += "var cfg={n:" + std::to_string(f) + "};";
    for (std::size_t r = 0; r < reps; ++r) {
      std::string sample = body;
      sample += "var " + rng.identifier(3, 8) + "=" + std::to_string(f) + ";";
      const auto tokens = text::lex(sample);
      streams.push_back(
          abstract_tokens(tokens, text::Abstraction::KeywordsAndPunct, in));
    }
  }
  return streams;
}

TEST(Partitioned, MergesClustersSplitAcrossPartitions) {
  Interner in;
  const auto streams = make_families(5, 12, in);
  PartitionedParams params;
  params.partitions = 4;
  params.threads = 2;
  params.dbscan = {.eps = 0.10, .min_mass = 3};
  PartitionedClusterer clusterer(params);
  kizzle::Rng rng(1);
  const auto result = clusterer.run(streams, {}, rng);
  // Each family has 12 reps scattered over 4 partitions (expected 3 per
  // partition) — the reduce step must reassemble them into ~5 clusters.
  EXPECT_EQ(result.clusters.size(), 5u);
  std::size_t covered = 0;
  for (const auto& c : result.clusters) covered += c.size();
  EXPECT_GE(covered + result.noise.size(), streams.size());
}

TEST(Partitioned, SinglePartitionMatchesPlainDbscan) {
  Interner in;
  const auto streams = make_families(4, 6, in);
  PartitionedParams params;
  params.partitions = 1;
  params.threads = 1;
  params.dbscan = {.eps = 0.10, .min_mass = 3};
  PartitionedClusterer clusterer(params);
  kizzle::Rng rng(2);
  const auto result = clusterer.run(streams, {}, rng);
  TokenDbscan db(streams, {}, params.dbscan);
  const auto direct = db.run();
  EXPECT_EQ(static_cast<int>(result.clusters.size()), direct.n_clusters);
}

TEST(Partitioned, WeightsFlowThrough) {
  Interner in;
  // One unique stream with weight 5: must form a cluster on its own.
  const auto tokens = text::lex("var a=1;function f(){return a}");
  std::vector<std::vector<std::uint32_t>> streams = {
      abstract_tokens(tokens, text::Abstraction::KeywordsAndPunct, in)};
  std::vector<std::size_t> weights = {5};
  PartitionedParams params;
  params.partitions = 2;
  params.dbscan = {.eps = 0.10, .min_mass = 3};
  PartitionedClusterer clusterer(params);
  kizzle::Rng rng(3);
  const auto result = clusterer.run(streams, weights, rng);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_TRUE(result.noise.empty());
}

TEST(Partitioned, EmptyInput) {
  PartitionedClusterer clusterer(PartitionedParams{});
  kizzle::Rng rng(4);
  const auto result = clusterer.run({}, {}, rng);
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_TRUE(result.noise.empty());
}

TEST(Partitioned, StatsArePopulated) {
  Interner in;
  const auto streams = make_families(3, 8, in);
  PartitionedParams params;
  params.partitions = 3;
  params.dbscan = {.eps = 0.10, .min_mass = 3};
  PartitionedClusterer clusterer(params);
  kizzle::Rng rng(5);
  clusterer.run(streams, {}, rng);
  const auto& stats = clusterer.stats();
  EXPECT_GT(stats.map.pairs_considered, 0u);
  EXPECT_GE(stats.clusters_before_merge, stats.clusters_after_merge);
  EXPECT_GE(stats.map_seconds, 0.0);
}

TEST(Partitioned, DeterministicAcrossThreadCounts) {
  // The parallel reduce collects merge edges with pure distance
  // predicates, so thread count must not change the result.
  Interner in;
  const auto streams = make_families(6, 10, in);
  auto run_with = [&](std::size_t threads) {
    PartitionedParams params;
    params.partitions = 5;
    params.threads = threads;
    params.dbscan = {.eps = 0.10, .min_mass = 3};
    PartitionedClusterer clusterer(params);
    kizzle::Rng rng(42);  // same partitioning every run
    auto result = clusterer.run(streams, {}, rng);
    for (auto& c : result.clusters) std::sort(c.begin(), c.end());
    std::sort(result.clusters.begin(), result.clusters.end());
    std::sort(result.noise.begin(), result.noise.end());
    return result;
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  EXPECT_EQ(serial.clusters, parallel.clusters);
  EXPECT_EQ(serial.noise, parallel.noise);
}

TEST(Partitioned, ExternalPoolIsUsed) {
  Interner in;
  const auto streams = make_families(3, 6, in);
  kizzle::ThreadPool pool(2);
  PartitionedParams params;
  params.partitions = 3;
  params.dbscan = {.eps = 0.10, .min_mass = 3};
  params.pool = &pool;
  PartitionedClusterer clusterer(params);
  kizzle::Rng rng(7);
  const auto result = clusterer.run(streams, {}, rng);
  std::size_t covered = 0;
  for (const auto& c : result.clusters) covered += c.size();
  EXPECT_EQ(covered + result.noise.size(), streams.size());
}

TEST(Partitioned, StatsCountEachPairOnce) {
  Interner in;
  const auto streams = make_families(4, 8, in);
  PartitionedParams params;
  params.partitions = 2;
  params.dbscan = {.eps = 0.10, .min_mass = 3};
  PartitionedClusterer clusterer(params);
  kizzle::Rng rng(11);
  clusterer.run(streams, {}, rng);
  const auto& st = clusterer.stats();
  // Map pairs are unordered and counted once: with n points split into
  // partitions of n_p each, pairs_considered == sum C(n_p, 2) < C(n, 2).
  const std::size_t n = streams.size();
  EXPECT_LE(st.map.pairs_considered, n * (n - 1) / 2);
  EXPECT_LE(st.map.dp_computations, st.map.pairs_considered);
  EXPECT_GE(st.map.graph_seconds, 0.0);
}

TEST(Partitioned, MorePartitionsThanPoints) {
  Interner in;
  const auto streams = make_families(1, 3, in);
  PartitionedParams params;
  params.partitions = 64;
  params.dbscan = {.eps = 0.10, .min_mass = 1};
  PartitionedClusterer clusterer(params);
  kizzle::Rng rng(6);
  const auto result = clusterer.run(streams, {}, rng);
  EXPECT_EQ(result.clusters.size(), 1u);
}

}  // namespace
}  // namespace kizzle::cluster
