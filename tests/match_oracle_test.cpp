// Differential testing of the regex VM against a tiny reference
// implementation, on randomized patterns and subjects.
//
// The reference covers the grammar subset used by generated signatures
// (literals, character classes with bounds, '.', concatenation) with
// straightforward exponential backtracking — trivially correct, hopeless
// performance. The production VM must agree with it everywhere.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "match/pattern.h"
#include "support/rng.h"

namespace kizzle::match {
namespace {

// ------------------------- reference matcher -------------------------

struct RefPiece {
  enum class Kind { Literal, Class, Any } kind;
  char literal = 0;
  std::string chars;  // Class: allowed characters
  std::size_t min = 1;
  std::size_t max = 1;
};

bool piece_accepts(const RefPiece& p, char c) {
  switch (p.kind) {
    case RefPiece::Kind::Literal: return c == p.literal;
    case RefPiece::Kind::Class:
      return p.chars.find(c) != std::string::npos;
    case RefPiece::Kind::Any: return c != '\n';
  }
  return false;
}

// Can pieces[i..] match text[pos..] exactly to some end? Returns every
// reachable end position set as a boolean table to keep it simple.
bool ref_match_here(const std::vector<RefPiece>& pieces, std::size_t i,
                    std::string_view text, std::size_t pos) {
  if (i == pieces.size()) return true;
  const RefPiece& p = pieces[i];
  // Consume between min and max characters accepted by this piece.
  std::size_t consumed = 0;
  // first consume the mandatory part
  while (consumed < p.min) {
    if (pos + consumed >= text.size() ||
        !piece_accepts(p, text[pos + consumed])) {
      return false;
    }
    ++consumed;
  }
  for (;;) {
    if (ref_match_here(pieces, i + 1, text, pos + consumed)) return true;
    if (consumed >= p.max || pos + consumed >= text.size() ||
        !piece_accepts(p, text[pos + consumed])) {
      return false;
    }
    ++consumed;
  }
}

bool ref_search(const std::vector<RefPiece>& pieces, std::string_view text) {
  for (std::size_t pos = 0; pos <= text.size(); ++pos) {
    if (ref_match_here(pieces, 0, text, pos)) return true;
  }
  return false;
}

// Renders the piece list as a pattern string for Pattern::compile.
std::string render(const std::vector<RefPiece>& pieces) {
  std::string out;
  for (const RefPiece& p : pieces) {
    switch (p.kind) {
      case RefPiece::Kind::Literal:
        out += Pattern::escape(std::string(1, p.literal));
        break;
      case RefPiece::Kind::Class:
        out += "[" + p.chars + "]";
        break;
      case RefPiece::Kind::Any:
        out += ".";
        break;
    }
    if (p.min != 1 || p.max != 1) {
      out += "{" + std::to_string(p.min) + "," + std::to_string(p.max) + "}";
    }
  }
  return out;
}

// Random pattern over a small alphabet (so matches actually happen).
std::vector<RefPiece> random_pattern(Rng& rng) {
  static constexpr std::string_view kAlpha = "abc";
  std::vector<RefPiece> pieces;
  const std::size_t n = 1 + rng.index(5);
  for (std::size_t i = 0; i < n; ++i) {
    RefPiece p;
    switch (rng.index(3)) {
      case 0:
        p.kind = RefPiece::Kind::Literal;
        p.literal = kAlpha[rng.index(kAlpha.size())];
        break;
      case 1: {
        p.kind = RefPiece::Kind::Class;
        // non-empty subset of the alphabet
        do {
          p.chars.clear();
          for (char c : kAlpha) {
            if (rng.chance(0.5)) p.chars.push_back(c);
          }
        } while (p.chars.empty());
        break;
      }
      default:
        p.kind = RefPiece::Kind::Any;
        break;
    }
    if (rng.chance(0.5)) {
      p.min = rng.index(3);
      p.max = p.min + rng.index(3);
    }
    if (p.max == 0) p.max = p.min = 1;  // avoid empty-only pieces mid-test
    pieces.push_back(p);
  }
  return pieces;
}

class OracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(OracleSweep, VmAgreesWithReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 17);
  for (int trial = 0; trial < 60; ++trial) {
    const auto pieces = random_pattern(rng);
    const std::string source = render(pieces);
    Pattern compiled = Pattern::compile(source);
    for (int t = 0; t < 12; ++t) {
      const std::string text = rng.string_over("abc", rng.index(12));
      const bool expected = ref_search(pieces, text);
      const bool actual = compiled.found_in(text);
      EXPECT_EQ(actual, expected)
          << "pattern=" << source << " text=\"" << text << "\"";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep, ::testing::Range(0, 20));

// Match spans agree with the reference's leftmost semantics for anchored
// attempts.
TEST(Oracle, AnchoredAgreement) {
  Rng rng(4096);
  for (int trial = 0; trial < 300; ++trial) {
    const auto pieces = random_pattern(rng);
    const std::string source = render(pieces);
    Pattern compiled = Pattern::compile(source);
    const std::string text = rng.string_over("abc", rng.index(10));
    for (std::size_t at = 0; at <= text.size(); ++at) {
      const bool expected = ref_match_here(pieces, 0, text, at);
      const bool actual = compiled.match_at(text, at).matched;
      EXPECT_EQ(actual, expected)
          << "pattern=" << source << " text=\"" << text << "\" at=" << at;
    }
  }
}

}  // namespace
}  // namespace kizzle::match
