#include <gtest/gtest.h>

#include "match/pattern.h"
#include "match/scanner.h"

namespace kizzle::match {
namespace {

bool found(const std::string& pattern, std::string_view text) {
  return Pattern::compile(pattern).found_in(text);
}

TEST(Pattern, LiteralMatch) {
  EXPECT_TRUE(found("abc", "xxabcxx"));
  EXPECT_FALSE(found("abc", "ab"));
  EXPECT_FALSE(found("abc", "axbxc"));
}

TEST(Pattern, MatchSpan) {
  const auto p = Pattern::compile("bcd");
  const auto r = p.search("abcde");
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.begin, 1u);
  EXPECT_EQ(r.end, 4u);
}

TEST(Pattern, Dot) {
  EXPECT_TRUE(found("a.c", "abc"));
  EXPECT_FALSE(found("a.c", "a\nc"));  // '.' does not cross lines
}

TEST(Pattern, EscapedMetachars) {
  EXPECT_TRUE(found("a\\.c", "a.c"));
  EXPECT_FALSE(found("a\\.c", "abc"));
  EXPECT_TRUE(found("\\(\\)", "()"));
  EXPECT_TRUE(found("a\\\\b", "a\\b"));
}

TEST(Pattern, CharClass) {
  EXPECT_TRUE(found("[abc]+", "zzbzz"));
  EXPECT_TRUE(found("[0-9a-f]{4}", "xx1a2bxx"));
  EXPECT_FALSE(found("[0-9]{4}", "12a4"));
}

TEST(Pattern, NegatedClass) {
  EXPECT_TRUE(found("[^0-9]", "a"));
  EXPECT_FALSE(found("[^0-9]", "5"));
}

TEST(Pattern, ClassWithLiteralDash) {
  EXPECT_TRUE(found("[a-]", "-"));
  EXPECT_TRUE(found("[-a]", "-"));
}

TEST(Pattern, ClassWithLeadingBracket) {
  EXPECT_TRUE(found("[]a]+", "]a]"));
}

TEST(Pattern, QuantifierStar) {
  EXPECT_TRUE(found("ab*c", "ac"));
  EXPECT_TRUE(found("ab*c", "abbbc"));
}

TEST(Pattern, QuantifierPlus) {
  EXPECT_FALSE(found("ab+c", "ac"));
  EXPECT_TRUE(found("ab+c", "abc"));
}

TEST(Pattern, QuantifierQuestion) {
  EXPECT_TRUE(found("ab?c", "ac"));
  EXPECT_TRUE(found("ab?c", "abc"));
  EXPECT_FALSE(found("ab?c", "abbc"));
}

TEST(Pattern, BoundedQuantifier) {
  EXPECT_TRUE(found("a{3}", "aaa"));
  EXPECT_FALSE(found("xa{3}x", "xaax"));
  EXPECT_TRUE(found("a{2,4}b", "aaab"));
  EXPECT_FALSE(found("^a{2,4}b$", "ab"));
  EXPECT_TRUE(found("a{2,}b", "aaaaaab"));
}

TEST(Pattern, BraceThatIsNotAQuantifierIsLiteral) {
  EXPECT_TRUE(found("a{x}", "a{x}"));
  EXPECT_TRUE(found("{", "{"));
}

TEST(Pattern, QuantifierGreediness) {
  const auto p = Pattern::compile("a.*b");
  const auto r = p.search("aXbYb");
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.end, 5u);  // greedy: matches to the last b
}

TEST(Pattern, Alternation) {
  EXPECT_TRUE(found("cat|dog", "hotdog"));
  EXPECT_TRUE(found("cat|dog", "catalog"));
  EXPECT_FALSE(found("cat|dog", "bird"));
  EXPECT_TRUE(found("a(b|c)d", "acd"));
}

TEST(Pattern, Anchors) {
  EXPECT_TRUE(found("^abc", "abcdef"));
  EXPECT_FALSE(found("^abc", "xabc"));
  EXPECT_TRUE(found("def$", "abcdef"));
  EXPECT_FALSE(found("def$", "defx"));
  EXPECT_TRUE(found("^$", ""));
}

TEST(Pattern, NumberedGroupsAndBackrefs) {
  EXPECT_TRUE(found("(ab)\\1", "abab"));
  EXPECT_FALSE(found("(ab)\\1", "abac"));
  EXPECT_TRUE(found("(a)(b)\\2\\1", "abba"));
}

TEST(Pattern, NamedGroupsAndBackrefs) {
  // The construct Kizzle signatures rely on (Fig 10a): a templatized
  // variable captured once and referenced later.
  const auto p = Pattern::compile(
      "(?<var1>[0-9a-zA-Z]{3,6})=\\[\\k<var1>\\]");
  EXPECT_TRUE(p.found_in("xx abc1=[abc1] yy"));
  EXPECT_FALSE(p.found_in("xx abc1=[abc2] yy"));
}

TEST(Pattern, GroupCaptureContents) {
  const auto p = Pattern::compile("(?<name>[a-z]+)=(?<value>[0-9]+)");
  const auto r = p.search("  width=240;");
  ASSERT_TRUE(r.matched);
  ASSERT_EQ(p.group_count(), 2u);
  EXPECT_EQ(p.group_name(1), "name");
  ASSERT_TRUE(r.groups[1].has_value());
  EXPECT_EQ(r.groups[1]->begin, 2u);
  EXPECT_EQ(r.groups[1]->end, 7u);
}

TEST(Pattern, NonCapturingGroup) {
  const auto p = Pattern::compile("(?:ab)+c");
  EXPECT_TRUE(p.found_in("ababc"));
  EXPECT_EQ(p.group_count(), 0u);
}

TEST(Pattern, UnmatchedGroupBackrefMatchesEmpty) {
  // ECMAScript semantics: backreference to a group that never matched.
  EXPECT_TRUE(found("(a)?\\1b", "b"));
}

TEST(Pattern, EscapeClasses) {
  EXPECT_TRUE(found("\\d+", "abc123"));
  EXPECT_FALSE(found("\\d", "abc"));
  EXPECT_TRUE(found("\\w+", "a_1"));
  EXPECT_TRUE(found("\\s", " "));
  EXPECT_TRUE(found("\\D", "x"));
  EXPECT_FALSE(found("\\S", " \t"));
}

TEST(Pattern, EmptyLoopBodyTerminates) {
  // (a?)* with no 'a' in sight: the progress guard must stop the loop.
  EXPECT_TRUE(found("(a?)*b", "b"));
  EXPECT_TRUE(found("(a*)*b", "aaab"));
  EXPECT_FALSE(found("(a?)*c", "bbbb"));
}

TEST(Pattern, BudgetStopsCatastrophicBacktracking) {
  // (a+)+$ against a long non-matching tail — classic ReDoS shape.
  const auto p = Pattern::compile("(a+)+x");
  const std::string text(64, 'a');
  const auto r = p.search(text, 0, 200000);
  EXPECT_FALSE(r.matched);
  EXPECT_TRUE(r.budget_exceeded);
}

TEST(Pattern, ParseErrors) {
  EXPECT_THROW(Pattern::compile("("), PatternError);
  EXPECT_THROW(Pattern::compile("[a"), PatternError);
  EXPECT_THROW(Pattern::compile("a{3,1}"), PatternError);
  EXPECT_THROW(Pattern::compile("*a"), PatternError);
  EXPECT_THROW(Pattern::compile("\\k<nope>x"), PatternError);
  EXPECT_THROW(Pattern::compile("\\q"), PatternError);
  EXPECT_THROW(Pattern::compile("(?<dup>a)(?<dup>b)"), PatternError);
  EXPECT_THROW(Pattern::compile("\\2(a)"), PatternError);
}

TEST(Pattern, EscapeRoundTrip) {
  const std::string nasty = R"(a.b*c+d?e(f)g[h]i{j}k|l^m$n\o/p-q)";
  const std::string escaped = Pattern::escape(nasty);
  const auto p = Pattern::compile(escaped);
  EXPECT_TRUE(p.found_in("xx" + nasty + "yy"));
  EXPECT_FALSE(p.found_in("a.b*c+d?e(f)g[h]i{j}k|l^m$nXo/p-q"));
}

TEST(Pattern, RequiredLiteralExtraction) {
  const auto p = Pattern::compile("[0-9]{3}hello-world[a-z]+");
  EXPECT_EQ(p.required_literal(), "hello-world");
}

TEST(Pattern, PrefilterAgreesWithNaiveSearch) {
  // Same pattern, text placed at varying offsets — the literal prefilter
  // must find matches wherever they are.
  const auto p = Pattern::compile("[0-9]{2,5}LITERAL[a-z]{3}");
  for (std::size_t pad = 0; pad < 40; ++pad) {
    std::string text = std::string(pad, '.') + "123LITERALabc";
    EXPECT_TRUE(p.found_in(text)) << pad;
  }
  EXPECT_FALSE(p.found_in("123LITERA"));
  EXPECT_FALSE(p.found_in("LITERALabc"));  // missing digits
}

TEST(Pattern, SearchFromOffset) {
  const auto p = Pattern::compile("ab");
  const auto r = p.search("ab..ab", 1);
  ASSERT_TRUE(r.matched);
  EXPECT_EQ(r.begin, 4u);
}

TEST(Pattern, PaperStyleSignature) {
  // A Fig 9-shaped structural signature against normalized text.
  const auto p = Pattern::compile(
      R"((?<var0>[0-9a-zA-Z]{5,6})=this\[(?<var1>[0-9a-zA-Z]{3,5})\]\(.{11}\);)");
  EXPECT_TRUE(p.found_in("Euur1V=this[l9D](ev#333399al);"));
  EXPECT_TRUE(p.found_in("jkb0hA=this[uqA](ev#ccff00al);"));
  EXPECT_TRUE(p.found_in("QB0Xk=this[k3LSC](ev#33cc00al);"));
  // Too few identifier characters before '=': the {5,6} class cannot match.
  EXPECT_FALSE(p.found_in("ab12=this[l9D](ev#333399al);"));
  // Eleven-character wildcard is exact: a longer delimiter breaks it.
  EXPECT_FALSE(p.found_in("Euur1V=this[l9D](ev#3333999999al);"));
}

// ------------------------- confirmation tiers -------------------------

TEST(Pattern, ConfirmTierClassification) {
  // Pure literal (any length, even empty): confirmation is text.find().
  EXPECT_EQ(Pattern::compile("abc").confirm_tier(), ConfirmTier::kLiteral);
  EXPECT_EQ(Pattern::compile("a").confirm_tier(), ConfirmTier::kLiteral);
  EXPECT_EQ(Pattern::compile("").confirm_tier(), ConfirmTier::kLiteral);
  // Literal-dominated: an anchor literal plus fixed-width prefix and
  // bounded suffix steps.
  EXPECT_EQ(Pattern::compile("abc[0-9]{0,8}").confirm_tier(),
            ConfirmTier::kLiteralDominated);
  EXPECT_EQ(Pattern::compile("a.cdef").confirm_tier(),
            ConfirmTier::kLiteralDominated);
  EXPECT_EQ(Pattern::compile("ab[0-9]cd").confirm_tier(),
            ConfirmTier::kLiteralDominated);
  EXPECT_EQ(Pattern::compile("zq[0-9]{3}zq").confirm_tier(),
            ConfirmTier::kLiteralDominated);
  // Everything that breaks linearity or boundedness keeps the VM.
  EXPECT_EQ(Pattern::compile("ab|cd").confirm_tier(), ConfirmTier::kRegex);
  EXPECT_EQ(Pattern::compile("^abc").confirm_tier(), ConfirmTier::kRegex);
  EXPECT_EQ(Pattern::compile("abc$").confirm_tier(), ConfirmTier::kRegex);
  EXPECT_EQ(Pattern::compile("abc[0-9]*").confirm_tier(),
            ConfirmTier::kRegex);  // unbounded repeat
  EXPECT_EQ(Pattern::compile("(ab)\\1").confirm_tier(),
            ConfirmTier::kRegex);  // backreference
  EXPECT_EQ(Pattern::compile("a{0,3}bcd").confirm_tier(),
            ConfirmTier::kRegex);  // variable-width prefix
}

TEST(Pattern, ConfirmSpanAgreesWithVmSearch) {
  // Differential oracle: for every tier, every text, and every start
  // offset, confirm_span must produce exactly search_span's answer.
  const std::vector<std::string> sources = {
      "abc",          "a",           "",
      "abc[0-9]{0,8}", "a.cdef",     "ab[0-9]cd",
      "ab.?cd",       "zq[0-9]{3}zq", "xy[a-z]{2,4}z",
      "ab|cd",        "abc[0-9]*",
  };
  const std::vector<std::string> texts = {
      "",
      "abc",
      "xxabc12345678999 a.cdef abXcd",
      "abxd abcd ab7cd",
      "zq12zq zq123zq xyabz xyabcdz",
      "noise cd noise ab more",
      std::string("abc") + std::string(20, '1'),
  };
  VmScratch scratch;
  for (const std::string& src : sources) {
    const Pattern p = Pattern::compile(src);
    for (const std::string& text : texts) {
      for (std::size_t from = 0; from <= text.size() + 1; ++from) {
        const SpanResult want = p.search_span(text, scratch, from);
        const SpanResult got = p.confirm_span(text, scratch, from);
        ASSERT_EQ(got.matched, want.matched)
            << src << " on \"" << text << "\" from " << from;
        if (want.matched) {
          EXPECT_EQ(got.begin, want.begin) << src << " from " << from;
          EXPECT_EQ(got.end, want.end) << src << " from " << from;
        }
      }
    }
  }
}

TEST(Pattern, CopySemantics) {
  auto a = Pattern::compile("ab+c");
  Pattern b = a;  // copy
  EXPECT_TRUE(b.found_in("xabbcx"));
  Pattern c = std::move(a);
  EXPECT_TRUE(c.found_in("xabcx"));
}

// ------------------------------- Scanner -------------------------------

TEST(Scanner, ReportsAllMatchingSignatures) {
  Scanner scanner;
  scanner.add("sig-a", Pattern::compile("alpha[0-9]+"));
  scanner.add("sig-b", Pattern::compile("beta"));
  scanner.add("sig-c", Pattern::compile("gamma"));
  const auto hits = scanner.scan("xx alpha42 and beta yy");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(scanner.name(hits[0].signature_index), "sig-a");
  EXPECT_EQ(scanner.name(hits[1].signature_index), "sig-b");
}

TEST(Scanner, AnyMatchShortCircuits) {
  Scanner scanner;
  scanner.add("sig", Pattern::compile("needle"));
  EXPECT_TRUE(scanner.any_match("haystack with needle inside"));
  EXPECT_FALSE(scanner.any_match("nothing here"));
}

TEST(Scanner, IndexOutOfRangeThrows) {
  Scanner scanner;
  EXPECT_THROW(scanner.name(0), std::out_of_range);
}

}  // namespace
}  // namespace kizzle::match
