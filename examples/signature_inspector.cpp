// signature_inspector: explain what the signature compiler does with a
// cluster of samples.
//
// Reads JavaScript samples from files given on the command line (or uses a
// built-in three-sample cluster modeled on the paper's Fig 9), compiles a
// signature, and prints the per-column analysis: which token offsets
// became literals, which became character classes, and which turned into
// backreferences of earlier columns.
//
// Build & run:  ./build/examples/signature_inspector [sample.js ...]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "engine/engine.h"
#include "match/pattern.h"
#include "sig/compiler.h"
#include "sig/synthesis.h"
#include "support/table.h"
#include "text/lexer.h"

int main(int argc, char** argv) {
  using namespace kizzle;

  std::vector<std::string> sources;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      sources.push_back(buf.str());
    }
  } else {
    std::printf("(no files given; using the built-in Fig 9 cluster)\n\n");
    sources = {
        R"(Euur1V = this["l9D"]("ev#333399al"); go(Euur1V);)",
        R"(jkb0hA = this["uqA"]("ev#ccff00al"); go(jkb0hA);)",
        R"(QB0Xk  = this["k3LSC"]("ev#33cc00al"); go(QB0Xk);)",
    };
  }

  sig::CompilerParams params;
  params.min_tokens = 3;
  params.length_slack = 0.0;  // paper-exact bounds; set >0 for deployment
  const sig::Signature signature =
      sig::compile_signature_from_sources(sources, params);
  if (!signature.ok) {
    std::printf("compilation failed: %s\n", signature.failure.c_str());
    return 1;
  }

  std::printf("common window: %zu tokens\n\n", signature.token_length);
  Table table({"col", "kind", "emitted", "concrete values"});
  for (std::size_t j = 0; j < signature.columns.size(); ++j) {
    const sig::Column& col = signature.columns[j];
    if (col.is_literal) {
      table.add_row({std::to_string(j), "literal",
                     sig::escape_literal(col.literal), col.literal});
    } else if (col.backref_of >= 0) {
      const int g = signature.columns[static_cast<std::size_t>(
                                          col.backref_of)]
                        .group;
      table.add_row({std::to_string(j), "backref",
                     "\\k<var" + std::to_string(g) + ">",
                     "repeats column " + std::to_string(col.backref_of)});
    } else {
      std::string values;
      for (std::size_t v = 0; v < col.values.size(); ++v) {
        if (v) values += " | ";
        values += col.values[v];
      }
      table.add_row({std::to_string(j), "class",
                     "(?<var" + std::to_string(col.group) + ">...)",
                     values});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("signature (%zu chars):\n%s\n\n", signature.length(),
              signature.pattern.c_str());

  // Verify through the scan engine, exactly as deployment would: one
  // single-signature database, one scratch, match events with spans.
  const engine::Database db = engine::Database::compile(
      {engine::Database::Spec{"inspected", "", signature.pattern}});
  engine::Scratch scratch;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const std::string norm =
        sig::normalized_token_text(text::lex(sources[s]));
    if (const auto hit = engine::first_match(db, norm, scratch)) {
      std::printf("sample %zu: matched (bytes %zu-%zu)\n", s, hit->begin,
                  hit->end);
    } else {
      std::printf("sample %zu: NOT MATCHED (bug!)\n", s);
    }
  }
  return 0;
}
