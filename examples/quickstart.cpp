// Quickstart: the Kizzle loop in one file.
//
//   1. capture a handful of packed malware samples (here: generated RIG
//      landing pages — inert stand-ins with the real packing scheme);
//   2. feed them to the pipeline together with benign traffic;
//   3. the pipeline clusters, unpacks the prototype, labels it against the
//      seeded corpus, and compiles an AV-deployable signature;
//   4. scan new traffic with the result.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "kitgen/families.h"
#include "kitgen/kit.h"
#include "kitgen/packers.h"
#include "kitgen/payload.h"
#include "text/normalize.h"

int main() {
  using namespace kizzle;

  // --- a tiny malware campaign: one RIG version, randomized per sample ---
  Rng rng(2014);
  kitgen::PayloadSpec spec;
  spec.family = kitgen::KitFamily::Rig;
  spec.cves = kitgen::kit_info(kitgen::KitFamily::Rig).cves;
  spec.av_check = true;
  spec.urls = {kitgen::make_landing_url(rng)};
  const std::string payload = payload_text(spec);

  std::vector<std::string> day_one;
  for (int i = 0; i < 6; ++i) {
    const std::string packed =
        pack_rig(payload, kitgen::RigPackerState{.delim = "y6"}, rng);
    day_one.push_back(kitgen::wrap_html("", packed, rng));
  }
  // ... drowned in benign pages.
  for (int i = 0; i < 5; ++i) {
    std::string benign =
        "function slider" + std::to_string(i) +
        "(){var d=document.getElementById(\"panel\");if(d){d.style."
        "display=\"block\"}}";
    day_one.push_back(kitgen::wrap_html("", benign, rng));
    day_one.push_back(kitgen::wrap_html("", benign, rng));
    day_one.push_back(kitgen::wrap_html("", benign, rng));
  }

  // --- the Kizzle pipeline, seeded with RIG's known unpacked payload ---
  core::KizzlePipeline pipeline(core::PipelineConfig{}, 1);
  pipeline.seed_family("RIG", 0.55, payload);

  const core::DayReport report = pipeline.process_day(0, day_one);
  std::printf("day 1: %zu samples -> %zu clusters\n", report.n_samples,
              report.n_clusters);
  for (const core::ClusterReport& cr : report.clusters) {
    std::printf("  cluster of %zu: %s", cr.samples.size(),
                cr.label.empty() ? "benign" : cr.label.c_str());
    if (!cr.label.empty()) {
      std::printf(" (winnow overlap %.0f%%, unpacked by '%s')",
                  cr.overlap * 100.0, cr.unpacker.c_str());
    }
    if (cr.issued_signature) std::printf(" -> signature %s", cr.signature_name.c_str());
    std::printf("\n");
  }

  if (pipeline.signatures().empty()) {
    std::printf("no signature issued\n");
    return 1;
  }
  const core::DeployedSignature& sig = pipeline.signatures().front();
  std::printf("\ndeployed signature (%zu chars, first 120 shown):\n  %.120s...\n\n",
              sig.pattern.size(), sig.pattern.c_str());

  // --- scan tomorrow's traffic through the unified engine ---
  // Deployment-side code scans the pipeline's compiled engine::Database
  // (maintained incrementally at each release) with a recycled per-thread
  // Scratch; matches arrive as events carrying the span.
  const engine::Database& db = pipeline.database();
  engine::Scratch scratch;

  const std::string new_rig_page = kitgen::wrap_html(
      "", pack_rig(payload, kitgen::RigPackerState{.delim = "y6"}, rng), rng);
  const std::string benign_page = kitgen::wrap_html(
      "", "function track(u){var i=new Image(1,1);i.src=u;return i}", rng);

  for (const auto& [name, html] :
       {std::pair{"fresh RIG landing page", new_rig_page},
        std::pair{"benign tracker script", benign_page}}) {
    const auto hit =
        engine::first_match(db, text::normalize_raw(html), scratch);
    if (hit) {
      std::printf("scan %-24s -> %s (bytes %zu-%zu)\n", name,
                  std::string(hit->name).c_str(), hit->begin, hit->end);
    } else {
      std::printf("scan %-24s -> clean\n", name);
    }
  }
  return 0;
}
