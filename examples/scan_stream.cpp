// scan_stream: a SOC-style view of one simulated day.
//
// Runs Kizzle and the simulated manual-AV engine side by side on a daily
// grayware batch and prints the detection log: which engine flagged which
// sample, with ground truth for comparison.
//
// Build & run:  ./build/examples/scan_stream [days]
#include <cstdio>
#include <cstdlib>

#include "av/analyst.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "kitgen/stream.h"
#include "text/normalize.h"

int main(int argc, char** argv) {
  using namespace kizzle;
  const int n_days = argc > 1 ? std::atoi(argv[1]) : 2;

  kitgen::StreamConfig scfg;
  scfg.volume_scale = 0.15;  // keep the log readable
  kitgen::StreamSimulator sim(scfg);
  core::KizzlePipeline pipeline(core::PipelineConfig{}, 5);
  for (const auto& [family, payload] : sim.seed_corpus()) {
    pipeline.seed_family(std::string(kitgen::family_name(family)), 0.60,
                         payload);
  }
  av::ManualAvEngine av_engine;
  av::Analyst analyst;
  analyst.install_initial_signatures(sim, av_engine);

  // The SOC's scan loop is deployment-side code: the pipeline maintains
  // the compiled engine::Database incrementally across releases, and every
  // sample is scanned with the same recycled Scratch — the steady-state
  // per-sample cost is one automaton pass plus candidate confirmation.
  engine::Scratch scratch;
  for (int day = kitgen::kAug1; day < kitgen::kAug1 + n_days; ++day) {
    const auto batch = sim.generate_day(day);
    analyst.observe_day(day, sim, av_engine);
    std::vector<std::string> htmls;
    for (const auto& s : batch.samples) htmls.push_back(s.html);
    const auto report = pipeline.process_day(day, htmls);
    const engine::Database& db = pipeline.database();

    std::printf("=== %s — %zu samples, %zu clusters, %zu signatures live ===\n",
                kitgen::date_label(day).c_str(), batch.samples.size(),
                report.n_clusters, db.size());
    std::size_t agree = 0;
    std::size_t shown = 0;
    for (const auto& s : batch.samples) {
      const std::string norm = text::normalize_raw(s.html);
      const auto kz = engine::first_match(db, norm, scratch);
      const auto av = av_engine.match(day, norm);
      const bool malicious = s.truth != kitgen::Truth::Benign;
      if (kz.has_value() == malicious && av.has_value() == malicious) {
        ++agree;
        if (!malicious) continue;  // don't print thousands of clean lines
      }
      if (++shown > 40) continue;
      std::printf("  %-18s truth=%-12s kizzle=%-18s av=%s\n", s.id.c_str(),
                  std::string(kitgen::truth_name(s.truth)).c_str(),
                  kz ? std::string(kz->name).c_str() : "-",
                  av ? av->name.c_str() : "-");
    }
    std::printf("  (%zu samples where both engines agreed with ground "
                "truth)\n\n",
                agree);
  }
  return 0;
}
