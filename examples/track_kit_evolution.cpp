// track_kit_evolution: watch the adversarial cycle (paper Fig 1) play out.
//
// Runs the Nuclear exploit kit generator through the second half of
// August 2014 — packer delimiter changes on 8/17, 8/19, 8/22, 8/26 and a
// payload CVE append on 8/27 (Fig 5) — with Kizzle re-signing each change
// the same day and a simulated human analyst lagging several days behind.
//
// Build & run:  ./build/examples/track_kit_evolution
#include <cstdio>

#include "av/analyst.h"
#include "core/pipeline.h"
#include "engine/engine.h"
#include "kitgen/stream.h"
#include "text/normalize.h"

int main() {
  using namespace kizzle;

  kitgen::StreamConfig scfg;
  scfg.volume_scale = 0.5;
  kitgen::StreamSimulator sim(scfg);
  core::KizzlePipeline pipeline(core::PipelineConfig{}, 99);
  for (const auto& [family, payload] : sim.seed_corpus()) {
    pipeline.seed_family(std::string(kitgen::family_name(family)), 0.60,
                         payload);
  }
  av::ManualAvEngine av_engine;
  av::Analyst analyst;
  analyst.install_initial_signatures(sim, av_engine);

  const std::size_t nuclear_idx =
      kitgen::family_index(kitgen::KitFamily::Nuclear);
  (void)nuclear_idx;
  std::printf("%-6s %-28s %-10s %-8s %-8s %s\n", "date", "kit event",
              "kizzle", "kz-FN", "av-FN", "feature of current version");
  std::printf("%s\n", std::string(100, '-').c_str());

  std::size_t sigs_before = 0;
  engine::Scratch scratch;  // recycled across the whole campaign
  for (int day = kitgen::kAug1; day <= kitgen::kAug31; ++day) {
    const auto batch = sim.generate_day(day);
    analyst.observe_day(day, sim, av_engine);
    std::vector<std::string> htmls;
    for (const auto& s : batch.samples) htmls.push_back(s.html);
    pipeline.process_day(day, htmls);

    // What happened to the kit today?
    std::string event = "-";
    for (const kitgen::KitEvent& e : kitgen::august_schedule()) {
      if (e.day == day && e.family == kitgen::KitFamily::Nuclear) {
        event = std::string(kitgen::event_kind_name(e.kind)) + ": " + e.label;
      }
    }

    // Did Kizzle respond?
    std::string kizzle = "-";
    for (std::size_t i = sigs_before; i < pipeline.signatures().size(); ++i) {
      if (pipeline.signatures()[i].family == "Nuclear") {
        kizzle = pipeline.signatures()[i].name;
      }
    }
    sigs_before = pipeline.signatures().size();

    // Detection on today's Nuclear samples, through the unified engine:
    // the pipeline's incrementally maintained database, every sample
    // scanned with one recycled scratch (first event == detection).
    const engine::Database& db = pipeline.database();
    std::size_t total = 0;
    std::size_t kz_miss = 0;
    std::size_t av_miss = 0;
    for (const auto& s : batch.samples) {
      if (s.truth != kitgen::Truth::Nuclear) continue;
      ++total;
      const std::string norm = text::normalize_raw(s.html);
      if (!engine::first_match(db, norm, scratch)) ++kz_miss;
      if (!av_engine.detects(day, norm)) ++av_miss;
    }
    std::printf("%-6s %-28s %-10s %zu/%-6zu %zu/%-6zu %s\n",
                kitgen::date_label(day).c_str(), event.c_str(),
                kizzle.c_str(), kz_miss, total, av_miss, total,
                sim.kit(kitgen::KitFamily::Nuclear).analyst_feature().c_str());
  }

  std::printf("\nmanual AV releases for Nuclear (lagging each change):\n");
  for (const av::AvRelease& r :
       av_engine.releases_for(kitgen::KitFamily::Nuclear)) {
    std::printf("  %-10s released %-5s matches \"%s\"\n", r.name.c_str(),
                kitgen::date_label(r.day).c_str(), r.literal.c_str());
  }
  return 0;
}
