// kizzle — command-line front end for the library.
//
//   kizzle tokenize <file>             token table (paper Fig 8)
//   kizzle normalize <file>            AV-normalized scan text
//   kizzle unpack <file>               static unpack (multi-layer)
//   kizzle compile <file>...           signature from a sample cluster
//   kizzle fragments <file>...         multi-fragment signature (§V ext.)
//   kizzle scan [--stats] [--limits k=v[,k=v...]] <sigfile> <file>...
//                                      scan files against signatures
//                                      (sigfile: one regex per line,
//                                      optional "name<TAB>pattern", a
//                                      signature DB, or a .kpf artifact —
//                                      artifacts load the prebuilt
//                                      automaton and stream each file;
//                                      --limits keys: input-bytes,
//                                      vm-steps, wall-ms — each scan then
//                                      reports its ScanOutcome when it
//                                      was cut short)
//   kizzle lint [--json] [--strict] <artifact|sigdb|sigfile>
//                                      static analysis of a signature set
//                                      (backtracking bombs, weak/dead/
//                                      shadowed signatures, dense shards;
//                                      .kpf artifacts are also verified by
//                                      recompile-and-compare); exit 1 on
//                                      error-severity findings
//   kizzle pack <sigdb> <out.kpf>      compile a deployed signature DB to
//                                      a binary bundle artifact (prebuilt
//                                      literal-prefilter automaton; v2
//                                      layout, mmap/zero-copy loadable)
//   kizzle pack --delta <base-sigdb> <full-sigdb> <out.kzd>
//                                      diff two databases of one lineage
//                                      into a KZDELTA incremental artifact
//                                      (fingerprint-chained; hot-applies
//                                      via serve --watch)
//   kizzle gen <kit> [n] [seed]        emit synthetic landing pages
//                                      (kit: nuclear|sweetorange|angler|rig)
//   kizzle serve [--watch <a.kpf>] [--workers N] [--clients N]
//                [--duration-ms N] [--stream-fraction F] [--seed N]
//                [<artifact.kpf>]      run the async scan service under the
//                                      built-in load generator (mixed
//                                      one-shot/stream traffic, latency
//                                      percentiles on stderr); --watch
//                                      lint-verifies and hot-swaps the
//                                      watched file when it changes — full
//                                      .kpf bundles reload the epoch,
//                                      KZDELTA deltas apply incrementally
//                                      (compile only the added signatures)
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "core/deploy.h"
#include "core/pipeline.h"
#include "core/sigdb.h"
#include "engine/engine.h"
#include "kitgen/families.h"
#include "kitgen/stream.h"
#include "match/pattern.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "support/mapped_file.h"
#include "sig/compiler.h"
#include "sig/multi_fragment.h"
#include "support/table.h"
#include "text/html.h"
#include "text/lexer.h"
#include "text/normalize.h"
#include "unpack/unpackers.h"

namespace {

using namespace kizzle;

std::string read_file(const std::string& path) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// HTML documents contribute their inline scripts; bare JS passes through.
std::string script_of(const std::string& content) {
  const auto blocks = text::extract_scripts(content);
  if (blocks.empty()) return content;
  return text::inline_script_text(content);
}

int cmd_tokenize(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::fprintf(stderr, "usage: kizzle tokenize <file>\n");
    return 2;
  }
  const std::string source = script_of(read_file(args[0]));
  Table table({"offset", "class", "text"});
  for (const text::Token& t : text::lex(source)) {
    std::string shown = t.text.substr(0, 48);
    if (shown.size() < t.text.size()) shown += "...";
    table.add_row({std::to_string(t.offset),
                   std::string(token_class_name(t.cls)), shown});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_normalize(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::fprintf(stderr, "usage: kizzle normalize <file>\n");
    return 2;
  }
  std::printf("%s\n", text::normalize_raw(read_file(args[0])).c_str());
  return 0;
}

int cmd_unpack(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::fprintf(stderr, "usage: kizzle unpack <file>\n");
    return 2;
  }
  const std::string source = script_of(read_file(args[0]));
  const auto result = unpack::unpack_fixpoint(source);
  if (!result) {
    std::fprintf(stderr, "no registered unpacker matched\n");
    return 1;
  }
  std::fprintf(stderr, "[unpacked by '%s']\n",
               std::string(result->unpacker).c_str());
  std::printf("%s\n", result->text.c_str());
  return 0;
}

int cmd_compile(const std::vector<std::string>& args, bool fragments) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: kizzle %s <file>...\n",
                 fragments ? "fragments" : "compile");
    return 2;
  }
  std::vector<std::vector<text::Token>> samples;
  for (const std::string& path : args) {
    samples.push_back(text::lex(script_of(read_file(path))));
  }
  if (fragments) {
    sig::MultiFragmentParams params;
    params.base.length_slack = 0.15;
    params.base.max_literal_run = 64;
    const sig::FragmentSignature signature =
        sig::compile_multi_fragment(samples, params);
    if (!signature.ok) {
      std::fprintf(stderr, "compilation failed: %s\n",
                   signature.failure.c_str());
      return 1;
    }
    std::fprintf(stderr, "[%zu fragments, %zu tokens, %zu chars]\n",
                 signature.fragments.size(), signature.total_tokens(),
                 signature.length());
    for (const sig::Signature& f : signature.fragments) {
      std::printf("%s\n", f.pattern.c_str());
    }
    return 0;
  }
  sig::CompilerParams params;
  params.length_slack = 0.15;
  params.max_literal_run = 64;
  const sig::Signature signature = sig::compile_signature(samples, params);
  if (!signature.ok) {
    std::fprintf(stderr, "compilation failed: %s\n", signature.failure.c_str());
    return 1;
  }
  std::fprintf(stderr, "[%zu tokens, %zu chars]\n", signature.token_length,
               signature.length());
  std::printf("%s\n", signature.pattern.c_str());
  return 0;
}

// --limits k=v[,k=v...]: the resource-governor knobs (engine/limits.h)
// that bound a scan against hostile input. Unknown keys are an error so a
// typo can't silently run ungoverned.
bool parse_limits(const std::string& spec, engine::ScanLimits& limits) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string_view item(spec.data() + pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      std::fprintf(stderr, "--limits: expected key=value in '%.*s'\n",
                   static_cast<int>(item.size()), item.data());
      return false;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    std::uint64_t n = 0;
    const auto [ptr, ec] =
        std::from_chars(val.data(), val.data() + val.size(), n);
    if (ec != std::errc{} || ptr != val.data() + val.size()) {
      std::fprintf(stderr, "--limits: bad number '%.*s'\n",
                   static_cast<int>(val.size()), val.data());
      return false;
    }
    if (key == "input-bytes") {
      limits.max_input_bytes = static_cast<std::size_t>(n);
    } else if (key == "vm-steps") {
      limits.vm_step_budget = n;
    } else if (key == "wall-ms") {
      limits.wall_budget = std::chrono::milliseconds(n);
    } else {
      std::fprintf(stderr,
                   "--limits: unknown key '%.*s' "
                   "(known: input-bytes, vm-steps, wall-ms)\n",
                   static_cast<int>(key.size()), key.data());
      return false;
    }
  }
  return true;
}

// Appended to a verdict line whenever the governor cut the scan short, so
// a "clean" under exhausted budget is distinguishable from a real clean.
std::string outcome_suffix(const engine::ScanOutcome& out) {
  if (out.complete()) return "";
  std::string s = " [";
  s += engine::scan_status_name(out.status);
  s += " @ ";
  s += engine::scan_stage_name(out.limited_stage);
  s += "]";
  return s;
}

// --stats output: the per-scan observability counters from the scratch
// (engine::ScanStats), one stderr line per scanned file, so stdout stays
// the parseable verdict stream.
const char* first_stage_name(match::PrefilterFallback fallback) {
  switch (fallback) {
    case match::PrefilterFallback::kNone:
      return "simd";
    case match::PrefilterFallback::kForcedAutomaton:
      return "automaton";
    case match::PrefilterFallback::kTextTooLarge:
      return "automaton(large-text)";
    case match::PrefilterFallback::kNoLiterals:
      return "no-literals";
    case match::PrefilterFallback::kDenseLiterals:
      return "automaton(dense-literals)";
  }
  return "?";
}

void print_scan_stats(const engine::ScanStats& st) {
  std::fprintf(stderr,
               "  [first-stage=%s hits=%zu shards=%zu dense=%zu "
               "survivors=%zu candidates=%zu confirm: find=%zu program=%zu "
               "vm=%zu]\n",
               first_stage_name(st.prefilter.fallback),
               st.prefilter.first_stage_hits, st.prefilter.shards_scanned,
               st.prefilter.dense_shards, st.prefilter.literal_survivors,
               st.candidates, st.confirmed_literal,
               st.confirmed_literal_dominated, st.confirmed_vm);
}

// Artifact path: load the release-built automaton into an engine database
// (no per-process rebuild) and stream each file through an engine stream
// in fixed-size chunks — the raw file is never fully resident. One scratch
// serves every file.
int scan_with_artifact(const std::string& content,
                       const std::vector<std::string>& args,
                       bool show_stats, const engine::ScanLimits& limits) {
  std::istringstream artifact(content);
  const engine::Database db = engine::Database::from_artifact(artifact);
  engine::Scratch scratch;
  scratch.set_limits(limits);
  int exit_code = 0;
  std::string buf(1 << 16, '\0');
  std::string stage;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (args[i] != "-") {
      file.open(args[i], std::ios::binary);
      if (!file) throw std::runtime_error("cannot open " + args[i]);
      in = &file;
    }
    engine::Stream stream = engine::open_stream(db, scratch);
    while (*in) {
      in->read(buf.data(), static_cast<std::streamsize>(buf.size()));
      const std::streamsize got = in->gcount();
      if (got <= 0) break;
      stage.clear();
      text::normalize_raw_append(
          std::string_view(buf.data(), static_cast<std::size_t>(got)), stage);
      stream.feed(stage);
    }
    std::optional<engine::MatchEvent> first;
    const engine::ScanOutcome out =
        stream.finish([&first](const engine::MatchEvent& event) {
          first = event;
          return engine::ScanDecision::Stop;
        });
    if (first) {
      exit_code = 1;
      std::printf("%-40s MATCH (%s @ %zu-%zu)%s\n", args[i].c_str(),
                  std::string(first->name).c_str(), first->begin, first->end,
                  outcome_suffix(out).c_str());
    } else {
      std::printf("%-40s clean%s\n", args[i].c_str(),
                  outcome_suffix(out).c_str());
    }
    if (show_stats) print_scan_stats(scratch.stats());
  }
  return exit_code;
}

int cmd_scan(const std::vector<std::string>& raw_args) {
  bool show_stats = false;
  engine::ScanLimits limits;
  std::vector<std::string> args;
  args.reserve(raw_args.size());
  for (std::size_t i = 0; i < raw_args.size(); ++i) {
    const std::string& a = raw_args[i];
    if (a == "--stats") {
      show_stats = true;
    } else if (a == "--limits") {
      if (i + 1 >= raw_args.size()) {
        std::fprintf(stderr, "--limits needs an argument\n");
        return 2;
      }
      if (!parse_limits(raw_args[++i], limits)) return 2;
    } else {
      args.push_back(a);
    }
  }
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: kizzle scan [--stats] [--limits k=v[,k=v...]] "
                 "<sigfile> <file>...\n");
    return 2;
  }
  // Each signature is compiled exactly once, straight into database
  // entries (per-line error reporting for the plain format).
  std::vector<engine::Database::Entry> entries;
  {
    const std::string content = read_file(args[0]);
    if (content.rfind(core::kDeltaMagic, 0) == 0) {
      std::fprintf(stderr,
                   "scan: %s is a KZDELTA delta artifact — it carries only "
                   "the increment over its base and cannot be scanned "
                   "alone; scan the full .kpf bundle, or hot-apply the "
                   "delta via `kizzle serve --watch`\n",
                   args[0].c_str());
      return 2;
    }
    if (content.rfind(core::kArtifactMagic, 0) == 0) {
      return scan_with_artifact(content, args, show_stats, limits);
    }
    if (content.rfind("# kizzle-signatures", 0) == 0) {
      // A signature database written by `kizzle demo` / save_signatures.
      // Compilation below is the validation; skip the loader's trial pass.
      std::istringstream is(content);
      for (const core::DeployedSignature& s :
           core::load_signatures(is, /*validate_patterns=*/false)) {
        entries.push_back(engine::Database::Entry{
            s.name, s.family, match::Pattern::compile(s.pattern)});
      }
    } else {
      // Plain format: one regex per line, optional "name<TAB>pattern".
      std::istringstream sigs(content);
      std::string line;
      std::size_t n = 0;
      while (std::getline(sigs, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::string name = "sig" + std::to_string(++n);
        std::string pattern = line;
        const std::size_t tab = line.find('\t');
        if (tab != std::string::npos) {
          name = line.substr(0, tab);
          pattern = line.substr(tab + 1);
        }
        try {
          match::Pattern compiled = match::Pattern::compile(pattern);
          entries.push_back(engine::Database::Entry{std::move(name), "",
                                                    std::move(compiled)});
        } catch (const match::PatternError& e) {
          std::fprintf(stderr, "bad signature '%s': %s\n", name.c_str(),
                       e.what());
          return 2;
        }
      }
    }
  }
  // One compiled database, one recycled scratch, event-driven matching:
  // every matching signature is reported per file.
  const engine::Database db =
      engine::Database::from_entries(std::move(entries));
  engine::Scratch scratch;
  scratch.set_limits(limits);
  int exit_code = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string normalized = text::normalize_raw(read_file(args[i]));
    std::string names;
    const engine::ScanOutcome out =
        engine::scan(db, normalized, scratch,
                     [&names](const engine::MatchEvent& event) {
                       if (!names.empty()) names += ", ";
                       names += event.name;
                       return engine::ScanDecision::Continue;
                     });
    if (names.empty()) {
      std::printf("%-40s clean%s\n", args[i].c_str(),
                  outcome_suffix(out).c_str());
    } else {
      exit_code = 1;
      std::printf("%-40s MATCH (%s)%s\n", args[i].c_str(), names.c_str(),
                  outcome_suffix(out).c_str());
    }
    if (show_stats) print_scan_stats(scratch.stats());
  }
  return exit_code;
}

// `pack --delta`: diff two signature databases of the same lineage into a
// KZDELTA artifact. The deployed set is append-only, so the base must be
// an exact prefix of the full set — anything else is a different lineage
// and is refused here rather than at some worker's hot-swap.
int cmd_pack_delta(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    std::fprintf(stderr,
                 "usage: kizzle pack --delta <base-sigdb> <full-sigdb> "
                 "<out.kzd>\n");
    return 2;
  }
  const auto base = core::load_signatures(read_file(args[0]));
  const auto full = core::load_signatures(read_file(args[1]));
  if (base.size() > full.size()) {
    std::fprintf(stderr,
                 "pack --delta: base has %zu signatures but full has only "
                 "%zu — not the same lineage\n",
                 base.size(), full.size());
    return 1;
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i].name != full[i].name || base[i].family != full[i].family ||
        base[i].pattern != full[i].pattern) {
      std::fprintf(stderr,
                   "pack --delta: base is not a prefix of full (first "
                   "divergence at #%zu: \"%s\" vs \"%s\") — the deployed "
                   "set is append-only, so these are different lineages\n",
                   i, base[i].name.c_str(), full[i].name.c_str());
      return 1;
    }
  }
  core::DeltaArtifact delta;
  delta.base_fingerprint = core::fingerprint(base);
  delta.result_fingerprint = core::fingerprint(full);
  delta.added.assign(full.begin() + static_cast<std::ptrdiff_t>(base.size()),
                     full.end());
  std::ofstream out(args[2], std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + args[2]);
  core::save_delta(out, delta);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + args[2]);
  std::fprintf(stderr,
               "[packed delta into %s: %zu-signature base + %zu added]\n",
               args[2].c_str(), base.size(), delta.added.size());
  return 0;
}

int cmd_pack(const std::vector<std::string>& args) {
  if (!args.empty() && args[0] == "--delta") {
    return cmd_pack_delta({args.begin() + 1, args.end()});
  }
  if (args.size() != 2) {
    std::fprintf(stderr,
                 "usage: kizzle pack <sigdb> <out.kpf>\n"
                 "       kizzle pack --delta <base-sigdb> <full-sigdb> "
                 "<out.kzd>\n");
    return 2;
  }
  const auto signatures = core::load_signatures(read_file(args[0]));
  std::ofstream out(args[1], std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + args[1]);
  core::save_artifact(out, signatures);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + args[1]);
  std::fprintf(stderr, "[packed %zu signatures into %s]\n", signatures.size(),
               args[1].c_str());
  return 0;
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: kizzle gen <nuclear|sweetorange|angler|rig>"
                         " [n] [seed]\n");
    return 2;
  }
  kitgen::KitFamily family;
  if (args[0] == "nuclear") {
    family = kitgen::KitFamily::Nuclear;
  } else if (args[0] == "sweetorange") {
    family = kitgen::KitFamily::SweetOrange;
  } else if (args[0] == "angler") {
    family = kitgen::KitFamily::Angler;
  } else if (args[0] == "rig") {
    family = kitgen::KitFamily::Rig;
  } else {
    std::fprintf(stderr, "unknown kit '%s'\n", args[0].c_str());
    return 2;
  }
  const std::size_t n = args.size() > 1 ? std::stoul(args[1]) : 1;
  const std::uint64_t seed = args.size() > 2 ? std::stoull(args[2]) : 1;
  auto gen = kitgen::make_kit_generator(family, seed);
  gen->begin_day(kitgen::kAug1);
  Rng rng(seed ^ 0xABCDEF);
  for (std::size_t i = 0; i < n; ++i) {
    if (n > 1) std::printf("<!-- sample %zu -->\n", i + 1);
    std::printf("%s\n", gen->sample_html(rng).c_str());
  }
  return 0;
}

int cmd_demo(const std::vector<std::string>& args) {
  const int days = args.empty() ? 3 : std::stoi(args[0]);
  const std::string artifact_path = args.size() > 1 ? args[1] : "";
  if (days < 1 || days > 31) {
    std::fprintf(stderr, "demo: days must be in [1,31]\n");
    return 2;
  }
  kitgen::StreamConfig scfg;
  scfg.volume_scale = 0.3;
  kitgen::StreamSimulator sim(scfg);
  core::KizzlePipeline pipeline(core::PipelineConfig{}, 20140801);
  for (const auto& [family, payload] : sim.seed_corpus()) {
    pipeline.seed_family(std::string(kitgen::family_name(family)), 0.55,
                         payload);
  }
  for (int day = kitgen::kAug1; day < kitgen::kAug1 + days; ++day) {
    const auto batch = sim.generate_day(day);
    std::vector<std::string> htmls;
    for (const auto& s : batch.samples) htmls.push_back(s.html);
    const auto report = pipeline.process_day(day, htmls);
    std::fprintf(stderr,
                 "[%s] %zu samples, %zu clusters, %zu signatures deployed\n",
                 kitgen::date_label(day).c_str(), report.n_samples,
                 report.n_clusters, pipeline.signatures().size());
  }
  // The deployable artifact: a signature database on stdout, and — when a
  // path is given — the binary bundle artifact with the release-built
  // automaton for the deployment channels.
  std::printf("%s", core::save_signatures(pipeline.signatures()).c_str());
  if (!artifact_path.empty()) {
    std::ofstream out(artifact_path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open " + artifact_path);
    pipeline.export_artifact(out);
    out.flush();
    if (!out) throw std::runtime_error("write failed: " + artifact_path);
    std::fprintf(stderr, "[bundle artifact written to %s]\n",
                 artifact_path.c_str());
  }
  return 0;
}

// ------------------------------- serve -------------------------------

// Runs the asynchronous scan service (serve/server.h) and drives it with
// the built-in load generator: a kitgen day's traffic replayed as mixed
// one-shot/chunked-stream requests by closed-loop clients. With --watch,
// an ArtifactWatcher polls the given `.kpf` and hot-swaps it through the
// lint gate while the load runs — replace the file (atomic rename) from
// another process to exercise a live release. All reporting goes to
// stderr as parseable `[serve] key=value` lines (the smoke script greps
// them); exit 1 when any accepted request failed or nothing completed.
int cmd_serve(const std::vector<std::string>& raw_args) {
  serve::ServerConfig scfg;
  scfg.workers = 2;
  serve::LoadConfig lcfg;
  lcfg.clients = 4;
  lcfg.duration = std::chrono::milliseconds(2000);
  serve::FixtureConfig fcfg;
  std::string watch_path;
  std::chrono::milliseconds poll{200};
  std::string artifact_path;

  const auto num = [](const std::string& v) { return std::stoull(v); };
  for (std::size_t i = 0; i < raw_args.size(); ++i) {
    const std::string& a = raw_args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= raw_args.size()) {
        throw std::runtime_error("serve: missing value for " + a);
      }
      return raw_args[++i];
    };
    if (a == "--watch") {
      watch_path = next();
    } else if (a == "--workers") {
      scfg.workers = static_cast<std::size_t>(num(next()));
    } else if (a == "--queue-capacity") {
      scfg.queue_capacity = static_cast<std::size_t>(num(next()));
    } else if (a == "--clients") {
      lcfg.clients = static_cast<std::size_t>(num(next()));
    } else if (a == "--duration-ms") {
      lcfg.duration = std::chrono::milliseconds(num(next()));
    } else if (a == "--stream-fraction") {
      lcfg.stream_fraction = std::stod(next());
    } else if (a == "--seed") {
      fcfg.seed = num(next());
      lcfg.seed = fcfg.seed;
    } else if (a == "--poll-ms") {
      poll = std::chrono::milliseconds(num(next()));
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr,
                   "usage: kizzle serve [--watch <artifact.kpf>] "
                   "[--workers N] [--queue-capacity N] [--clients N]\n"
                   "                    [--duration-ms N] "
                   "[--stream-fraction F] [--seed N] [--poll-ms N]\n"
                   "                    [<artifact.kpf>]\n");
      return 2;
    } else {
      artifact_path = a;
    }
  }

  // The corpus (and, absent an artifact argument, the database) comes from
  // the deterministic serve fixture: one kitgen day compiled by the
  // pipeline, normalized for scanning.
  const serve::ServeFixture fixture = serve::make_fixture(fcfg);
  std::shared_ptr<const engine::Database> db = fixture.database;
  if (!artifact_path.empty()) {
    // Map the artifact instead of streaming it: a v2 bundle serves its
    // automaton tables straight out of the page cache (zero-copy), and a
    // fleet of workers loading the same release shares the pages.
    auto mapped = std::make_shared<const support::MappedFile>(
        support::MappedFile::open(artifact_path));
    db = std::make_shared<const engine::Database>(
        engine::Database::from_artifact(std::move(mapped)));
  }

  serve::ScanServer server(db, scfg);
  std::optional<serve::ArtifactWatcher> watcher;
  if (!watch_path.empty()) watcher.emplace(server, watch_path, poll);
  std::fprintf(stderr,
               "[serve] workers=%zu queue=%zu signatures=%zu docs=%zu "
               "epoch=%llu watch=%s\n",
               server.worker_count(), scfg.queue_capacity, db->size(),
               fixture.docs.size(),
               static_cast<unsigned long long>(server.epoch()),
               watch_path.empty() ? "-" : watch_path.c_str());

  const serve::LoadReport report =
      serve::run_load(server, fixture.docs, lcfg);
  server.drain();
  serve::ArtifactWatcher::Stats wstats;
  if (watcher) {
    wstats = watcher->stats();
    watcher->stop();
  }
  const serve::ServerStats stats = server.stats();
  server.stop();

  using ull = unsigned long long;
  std::fprintf(stderr,
               "[serve] completed=%llu one-shot=%llu stream=%llu "
               "matched=%llu shed=%llu failed=%llu deadline-expired=%llu\n",
               static_cast<ull>(report.completed),
               static_cast<ull>(report.one_shot),
               static_cast<ull>(report.stream),
               static_cast<ull>(report.matched), static_cast<ull>(report.shed),
               static_cast<ull>(report.failed),
               static_cast<ull>(report.deadline_expired));
  std::fprintf(stderr,
               "[serve] rps=%.1f p50-us=%.1f p99-us=%.1f p999-us=%.1f\n",
               report.rps(),
               static_cast<double>(report.latency.percentile(0.50)) / 1e3,
               static_cast<double>(report.latency.percentile(0.99)) / 1e3,
               static_cast<double>(report.latency.percentile(0.999)) / 1e3);
  std::fprintf(stderr,
               "[serve] epoch-swaps=%llu swaps-rejected=%llu final-epoch=%llu "
               "batches=%llu batched-jobs=%llu\n",
               static_cast<ull>(stats.epoch_swaps),
               static_cast<ull>(stats.swaps_rejected),
               static_cast<ull>(server.epoch()),
               static_cast<ull>(stats.batches),
               static_cast<ull>(stats.batched_jobs));
  if (watcher) {
    std::fprintf(stderr, "[serve] watch-swaps=%llu watch-rejected=%llu\n",
                 static_cast<ull>(wstats.swaps),
                 static_cast<ull>(wstats.rejected));
  }
  return (report.failed > 0 || report.completed == 0) ? 1 : 0;
}

// ------------------------------- lint -------------------------------

// Static analysis over a signature set (analyze/analyze.h): text findings
// to stdout (or one JSON object with --json, for CI), exit 1 on
// error-severity findings — with --strict, on warnings too. Accepts the
// same inputs as `kizzle scan`'s sigfile argument: a `.kpf` bundle
// (additionally verified by recompile-and-compare), a signature DB, or a
// plain regex-per-line file.
int cmd_lint(const std::vector<std::string>& raw_args) {
  bool json = false;
  bool strict = false;
  std::vector<std::string> args;
  for (const std::string& a : raw_args) {
    if (a == "--json") {
      json = true;
    } else if (a == "--strict") {
      strict = true;
    } else {
      args.push_back(a);
    }
  }
  if (args.size() != 1) {
    std::fprintf(stderr,
                 "usage: kizzle lint [--json] [--strict] "
                 "<artifact|sigdb|sigfile>\n");
    return 2;
  }
  const std::string content = read_file(args[0]);
  analyze::Report report;
  if (content.rfind(core::kDeltaMagic, 0) == 0) {
    std::fprintf(stderr,
                 "lint: %s is a KZDELTA delta artifact — it only makes "
                 "sense against the base it extends, which the serve "
                 "hot-swap gate lints automatically (analyze_delta); lint "
                 "the full .kpf bundle it produces instead\n",
                 args[0].c_str());
    return 2;
  }
  if (content.rfind(core::kArtifactMagic, 0) == 0) {
    std::istringstream is(content);
    report = analyze::analyze_artifact(is);
  } else if (content.rfind("# kizzle-signatures", 0) == 0) {
    std::istringstream is(content);
    std::vector<engine::Database::Entry> entries;
    for (const core::DeployedSignature& s :
         core::load_signatures(is, /*validate_patterns=*/false)) {
      entries.push_back(engine::Database::Entry{
          s.name, s.family, match::Pattern::compile(s.pattern)});
    }
    report = analyze::analyze_database(
        engine::Database::from_entries(std::move(entries)));
  } else {
    // Plain format: one regex per line, optional "name<TAB>pattern".
    std::vector<engine::Database::Spec> specs;
    std::istringstream sigs(content);
    std::string line;
    std::size_t n = 0;
    while (std::getline(sigs, line)) {
      if (line.empty() || line[0] == '#') continue;
      ++n;
      std::string name = "sig" + std::to_string(n);
      std::string pattern = line;
      const auto tab = line.find('\t');
      if (tab != std::string::npos) {
        name = line.substr(0, tab);
        pattern = line.substr(tab + 1);
      }
      specs.push_back(engine::Database::Spec{name, "", pattern});
    }
    report = analyze::analyze_database(engine::Database::compile(specs));
  }
  std::ostringstream os;
  if (json) {
    analyze::write_json(os, report);
  } else {
    analyze::write_text(os, report);
  }
  std::fputs(os.str().c_str(), stdout);
  return (!report.clean() || (strict && report.warnings() > 0)) ? 1 : 0;
}

int usage() {
  std::fprintf(stderr,
               "kizzle — exploit-kit signature compiler\n"
               "  kizzle tokenize <file>\n"
               "  kizzle normalize <file>\n"
               "  kizzle unpack <file>\n"
               "  kizzle compile <file>...\n"
               "  kizzle fragments <file>...\n"
               "  kizzle scan [--stats] [--limits k=v,...] "
               "<sigfile> <file>...\n"
               "  kizzle lint [--json] [--strict] <artifact|sigdb|sigfile>\n"
               "                            static analysis: backtracking\n"
               "                            bombs, weak/dead/shadowed\n"
               "                            signatures, dense prefilter\n"
               "                            shards, artifact verification\n"
               "                            (exit 1 on error findings)\n"
               "  kizzle pack <sigdb> <out.kpf>\n"
               "  kizzle pack --delta <base-sigdb> <full-sigdb> <out.kzd>\n"
               "                            diff two databases of one\n"
               "                            lineage into an incremental\n"
               "                            KZDELTA artifact\n"
               "  kizzle gen <kit> [n] [seed]\n"
               "  kizzle demo [days] [out.kpf]\n"
               "                            run the pipeline on a simulated\n"
               "                            stream, emit a signature DB (and\n"
               "                            optionally a bundle artifact)\n"
               "  kizzle serve [--watch <artifact.kpf>] [--workers N]\n"
               "               [--clients N] [--duration-ms N]\n"
               "               [--stream-fraction F] [--seed N] "
               "[<artifact.kpf>]\n"
               "                            run the async scan service under\n"
               "                            built-in mixed load; --watch\n"
               "                            hot-swaps a changed artifact\n"
               "                            (.kpf full reload or KZDELTA\n"
               "                            incremental apply) through the\n"
               "                            lint gate mid-run\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "tokenize") return cmd_tokenize(args);
    if (cmd == "normalize") return cmd_normalize(args);
    if (cmd == "unpack") return cmd_unpack(args);
    if (cmd == "compile") return cmd_compile(args, false);
    if (cmd == "fragments") return cmd_compile(args, true);
    if (cmd == "scan") return cmd_scan(args);
    if (cmd == "lint") return cmd_lint(args);
    if (cmd == "pack") return cmd_pack(args);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "demo") return cmd_demo(args);
    if (cmd == "serve") return cmd_serve(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
