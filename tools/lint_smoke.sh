#!/usr/bin/env bash
# End-to-end smoke for `kizzle lint` (registered as ctest cli_lint_smoke):
#
#   1. every committed `.kpf` corpus artifact lints clean, in text and in
#      --json (the exact invocation a CI deployment gate would run);
#   2. a fresh kitgen pipeline compile lints clean — both the text
#      signature database and the exported bundle artifact;
#   3. a handcrafted pathological signature set exits nonzero and names
#      the expected diagnostic classes.
#
# Usage: lint_smoke.sh <path-to-kizzle_cli> <repo-source-dir>
set -euo pipefail

cli="$1"
src="$2"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for f in "$src"/fuzz/corpus/load_artifact/*.kpf; do
  "$cli" lint "$f" > /dev/null
  "$cli" lint --json "$f" | grep -q '"clean":true'
done

"$cli" demo 2 "$tmp/demo.kpf" > "$tmp/demo.sigs" 2> /dev/null
"$cli" lint "$tmp/demo.sigs" > /dev/null
"$cli" lint "$tmp/demo.kpf" > /dev/null

printf 'bomb\t([a-z]+)+qzvwxk\nshadow.early\tmnopqr\nshadow.late\tzzmnopqrzz\ndead\tuvw"xyz\n' \
  > "$tmp/bad.sigs"
if "$cli" lint "$tmp/bad.sigs" > "$tmp/bad.out"; then
  echo "lint accepted a pathological signature set:" >&2
  cat "$tmp/bad.out" >&2
  exit 1
fi
grep -q 'backtracking-bomb' "$tmp/bad.out"
grep -q 'shadowed-signature' "$tmp/bad.out"
grep -q 'dead-signature' "$tmp/bad.out"

echo "lint smoke: ok"
