#!/usr/bin/env bash
# End-to-end smoke for `kizzle serve` (registered as ctest cli_serve_smoke):
#
#   1. compile a demo artifact and start the scan service on it with
#      --watch, driven by the built-in load generator (mixed one-shot and
#      chunked-stream traffic);
#   2. mid-run, compile a different artifact and atomically rename it over
#      the watched path — the release motion the watcher is for;
#   3. assert the run drained and shut down cleanly (exit 0), completed a
#      nonzero number of scans with zero failed requests, and performed at
#      least one lint-gated hot swap.
#
# Usage: serve_smoke.sh <path-to-kizzle_cli>
set -euo pipefail

cli="$1"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$cli" demo 1 "$tmp/live.kpf" > /dev/null 2> /dev/null
"$cli" demo 2 "$tmp/next.kpf" > /dev/null 2> /dev/null

"$cli" serve --watch "$tmp/live.kpf" --duration-ms 4000 --clients 2 \
  --poll-ms 100 "$tmp/live.kpf" 2> "$tmp/serve.log" &
serve_pid=$!

# Let the watcher prime on the initial artifact, then ship the release.
sleep 1.2
mv "$tmp/next.kpf" "$tmp/live.kpf"

if ! wait "$serve_pid"; then
  echo "serve exited nonzero:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

check() {
  if ! grep -qE "$1" "$tmp/serve.log"; then
    echo "serve smoke: missing '$1' in output:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
}

check '\[serve\] completed=[1-9][0-9]* '  # nonzero completed scans
check ' failed=0 '                        # clean drain: nothing dropped
check ' shed=0 '                          # closed-loop load is never shed
check '\[serve\] watch-swaps=[1-9]'       # the hot swap actually happened
check ' swaps-rejected=0 '                # the demo artifact lints clean

echo "serve smoke: ok"
