#!/usr/bin/env bash
# End-to-end smoke for the incremental-deploy path (ctest cli_delta_smoke):
#
#   1. run the demo pipeline for day 1 and for days 1-2 — the day-1
#      signature DB is a byte prefix of the two-day DB (append-only issue
#      order), which is exactly the lineage `pack --delta` requires;
#   2. pack the day-1 set as the serving bundle and diff the two DBs into
#      a KZDELTA delta artifact; corrupt one payload byte of a copy;
#   3. start `kizzle serve --watch` on the day-1 bundle under the built-in
#      load generator, then atomically rename the *corrupted* delta over
#      the watched path — it must be refused (checksum) with the serving
#      epoch untouched — and then the good delta, which must hot-apply;
#   4. assert a clean drain (exit 0, nonzero completed, zero failed/shed),
#      at least one rejected and at least one accepted watch deploy.
#
# Usage: delta_smoke.sh <path-to-kizzle_cli>
set -euo pipefail

cli="$1"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$cli" demo 1 > "$tmp/day1.db" 2> /dev/null
"$cli" demo 2 > "$tmp/day2.db" 2> /dev/null

# The append-only lineage the delta leans on: day1 is a prefix of day2.
if ! cmp -s "$tmp/day1.db" <(head -c "$(wc -c < "$tmp/day1.db")" "$tmp/day2.db"); then
  echo "delta smoke: day-1 DB is not a prefix of the day-2 DB" >&2
  exit 1
fi

"$cli" pack "$tmp/day1.db" "$tmp/live.kpf" > /dev/null 2> /dev/null
"$cli" pack --delta "$tmp/day1.db" "$tmp/day2.db" "$tmp/good.kzd" 2> /dev/null

# One flipped payload byte: the delta checksum must catch it at the gate.
cp "$tmp/good.kzd" "$tmp/bad.kzd"
printf '\xff' | dd of="$tmp/bad.kzd" bs=1 seek=40 count=1 conv=notrunc 2> /dev/null

"$cli" serve --watch "$tmp/live.kpf" --duration-ms 5000 --clients 2 \
  --poll-ms 100 "$tmp/live.kpf" 2> "$tmp/serve.log" &
serve_pid=$!

# Prime the watcher on the serving bundle, ship the corrupted delta first
# (must be refused, service keeps scanning), then the real one.
sleep 1.2
mv "$tmp/bad.kzd" "$tmp/live.kpf"
sleep 1.5
mv "$tmp/good.kzd" "$tmp/live.kpf"

if ! wait "$serve_pid"; then
  echo "serve exited nonzero:" >&2
  cat "$tmp/serve.log" >&2
  exit 1
fi

check() {
  if ! grep -qE "$1" "$tmp/serve.log"; then
    echo "delta smoke: missing '$1' in output:" >&2
    cat "$tmp/serve.log" >&2
    exit 1
  fi
}

check '\[serve\] completed=[1-9][0-9]* '   # scans kept flowing throughout
check ' failed=0 '                         # no dropped scans across swaps
check ' shed=0 '
check '\[serve\] watch-swaps=[1-9]'        # the good delta hot-applied
check ' watch-rejected=[1-9]'              # the corrupted delta was refused

echo "delta smoke: ok"
