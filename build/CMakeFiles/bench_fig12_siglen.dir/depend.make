# Empty dependencies file for bench_fig12_siglen.
# This may be replaced when dependencies are built.
