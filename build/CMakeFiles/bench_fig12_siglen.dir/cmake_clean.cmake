file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_siglen.dir/bench/bench_fig12_siglen.cpp.o"
  "CMakeFiles/bench_fig12_siglen.dir/bench/bench_fig12_siglen.cpp.o.d"
  "bench_fig12_siglen"
  "bench_fig12_siglen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_siglen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
