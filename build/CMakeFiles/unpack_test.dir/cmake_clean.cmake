file(REMOVE_RECURSE
  "CMakeFiles/unpack_test.dir/tests/unpack_test.cpp.o"
  "CMakeFiles/unpack_test.dir/tests/unpack_test.cpp.o.d"
  "unpack_test"
  "unpack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unpack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
