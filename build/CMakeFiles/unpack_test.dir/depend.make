# Empty dependencies file for unpack_test.
# This may be replaced when dependencies are built.
