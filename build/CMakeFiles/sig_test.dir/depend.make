# Empty dependencies file for sig_test.
# This may be replaced when dependencies are built.
