file(REMOVE_RECURSE
  "CMakeFiles/sig_test.dir/tests/sig_test.cpp.o"
  "CMakeFiles/sig_test.dir/tests/sig_test.cpp.o.d"
  "sig_test"
  "sig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
