file(REMOVE_RECURSE
  "CMakeFiles/kizzle_cli.dir/tools/kizzle_cli.cpp.o"
  "CMakeFiles/kizzle_cli.dir/tools/kizzle_cli.cpp.o.d"
  "kizzle_cli"
  "kizzle_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kizzle_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
