# Empty dependencies file for kizzle_cli.
# This may be replaced when dependencies are built.
