# Empty dependencies file for track_kit_evolution.
# This may be replaced when dependencies are built.
