file(REMOVE_RECURSE
  "CMakeFiles/track_kit_evolution.dir/examples/track_kit_evolution.cpp.o"
  "CMakeFiles/track_kit_evolution.dir/examples/track_kit_evolution.cpp.o.d"
  "track_kit_evolution"
  "track_kit_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_kit_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
