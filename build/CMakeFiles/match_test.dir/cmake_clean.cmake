file(REMOVE_RECURSE
  "CMakeFiles/match_test.dir/tests/match_test.cpp.o"
  "CMakeFiles/match_test.dir/tests/match_test.cpp.o.d"
  "match_test"
  "match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
