# Empty dependencies file for packers_test.
# This may be replaced when dependencies are built.
