file(REMOVE_RECURSE
  "CMakeFiles/packers_test.dir/tests/packers_test.cpp.o"
  "CMakeFiles/packers_test.dir/tests/packers_test.cpp.o.d"
  "packers_test"
  "packers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
