file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_signatures.dir/bench/bench_fig10_signatures.cpp.o"
  "CMakeFiles/bench_fig10_signatures.dir/bench/bench_fig10_signatures.cpp.o.d"
  "bench_fig10_signatures"
  "bench_fig10_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
