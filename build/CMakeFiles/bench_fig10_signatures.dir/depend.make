# Empty dependencies file for bench_fig10_signatures.
# This may be replaced when dependencies are built.
