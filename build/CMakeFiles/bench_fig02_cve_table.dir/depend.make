# Empty dependencies file for bench_fig02_cve_table.
# This may be replaced when dependencies are built.
