file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_cve_table.dir/bench/bench_fig02_cve_table.cpp.o"
  "CMakeFiles/bench_fig02_cve_table.dir/bench/bench_fig02_cve_table.cpp.o.d"
  "bench_fig02_cve_table"
  "bench_fig02_cve_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_cve_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
