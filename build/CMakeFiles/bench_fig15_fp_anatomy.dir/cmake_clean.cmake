file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_fp_anatomy.dir/bench/bench_fig15_fp_anatomy.cpp.o"
  "CMakeFiles/bench_fig15_fp_anatomy.dir/bench/bench_fig15_fp_anatomy.cpp.o.d"
  "bench_fig15_fp_anatomy"
  "bench_fig15_fp_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_fp_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
