# Empty dependencies file for bench_fig15_fp_anatomy.
# This may be replaced when dependencies are built.
