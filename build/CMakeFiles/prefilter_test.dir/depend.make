# Empty dependencies file for prefilter_test.
# This may be replaced when dependencies are built.
