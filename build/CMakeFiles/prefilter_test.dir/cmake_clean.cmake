file(REMOVE_RECURSE
  "CMakeFiles/prefilter_test.dir/tests/prefilter_test.cpp.o"
  "CMakeFiles/prefilter_test.dir/tests/prefilter_test.cpp.o.d"
  "prefilter_test"
  "prefilter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefilter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
