# Empty dependencies file for bench_hidden_signatures.
# This may be replaced when dependencies are built.
