file(REMOVE_RECURSE
  "CMakeFiles/bench_hidden_signatures.dir/bench/bench_hidden_signatures.cpp.o"
  "CMakeFiles/bench_hidden_signatures.dir/bench/bench_hidden_signatures.cpp.o.d"
  "bench_hidden_signatures"
  "bench_hidden_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hidden_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
