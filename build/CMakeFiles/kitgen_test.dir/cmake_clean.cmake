file(REMOVE_RECURSE
  "CMakeFiles/kitgen_test.dir/tests/kitgen_test.cpp.o"
  "CMakeFiles/kitgen_test.dir/tests/kitgen_test.cpp.o.d"
  "kitgen_test"
  "kitgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kitgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
