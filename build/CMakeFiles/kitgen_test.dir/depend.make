# Empty dependencies file for kitgen_test.
# This may be replaced when dependencies are built.
