file(REMOVE_RECURSE
  "CMakeFiles/partitioned_test.dir/tests/partitioned_test.cpp.o"
  "CMakeFiles/partitioned_test.dir/tests/partitioned_test.cpp.o.d"
  "partitioned_test"
  "partitioned_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
