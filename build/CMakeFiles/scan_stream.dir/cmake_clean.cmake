file(REMOVE_RECURSE
  "CMakeFiles/scan_stream.dir/examples/scan_stream.cpp.o"
  "CMakeFiles/scan_stream.dir/examples/scan_stream.cpp.o.d"
  "scan_stream"
  "scan_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
