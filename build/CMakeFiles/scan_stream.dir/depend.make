# Empty dependencies file for scan_stream.
# This may be replaced when dependencies are built.
