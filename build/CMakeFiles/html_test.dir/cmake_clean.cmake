file(REMOVE_RECURSE
  "CMakeFiles/html_test.dir/tests/html_test.cpp.o"
  "CMakeFiles/html_test.dir/tests/html_test.cpp.o.d"
  "html_test"
  "html_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
