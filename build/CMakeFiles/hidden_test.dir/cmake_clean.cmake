file(REMOVE_RECURSE
  "CMakeFiles/hidden_test.dir/tests/hidden_test.cpp.o"
  "CMakeFiles/hidden_test.dir/tests/hidden_test.cpp.o.d"
  "hidden_test"
  "hidden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
