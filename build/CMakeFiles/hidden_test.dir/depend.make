# Empty dependencies file for hidden_test.
# This may be replaced when dependencies are built.
