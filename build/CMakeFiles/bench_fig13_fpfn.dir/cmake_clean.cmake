file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_fpfn.dir/bench/bench_fig13_fpfn.cpp.o"
  "CMakeFiles/bench_fig13_fpfn.dir/bench/bench_fig13_fpfn.cpp.o.d"
  "bench_fig13_fpfn"
  "bench_fig13_fpfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_fpfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
