# Empty dependencies file for bench_fig13_fpfn.
# This may be replaced when dependencies are built.
