# Empty dependencies file for bench_fig14_counts.
# This may be replaced when dependencies are built.
