file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_counts.dir/bench/bench_fig14_counts.cpp.o"
  "CMakeFiles/bench_fig14_counts.dir/bench/bench_fig14_counts.cpp.o.d"
  "bench_fig14_counts"
  "bench_fig14_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
