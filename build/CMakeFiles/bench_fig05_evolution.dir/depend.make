# Empty dependencies file for bench_fig05_evolution.
# This may be replaced when dependencies are built.
