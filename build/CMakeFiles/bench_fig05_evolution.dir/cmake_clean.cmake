file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_evolution.dir/bench/bench_fig05_evolution.cpp.o"
  "CMakeFiles/bench_fig05_evolution.dir/bench/bench_fig05_evolution.cpp.o.d"
  "bench_fig05_evolution"
  "bench_fig05_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
