# Empty dependencies file for bench_fig06_window.
# This may be replaced when dependencies are built.
