file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_window.dir/bench/bench_fig06_window.cpp.o"
  "CMakeFiles/bench_fig06_window.dir/bench/bench_fig06_window.cpp.o.d"
  "bench_fig06_window"
  "bench_fig06_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
