# Empty dependencies file for bench_fig09_siggen.
# This may be replaced when dependencies are built.
