file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_siggen.dir/bench/bench_fig09_siggen.cpp.o"
  "CMakeFiles/bench_fig09_siggen.dir/bench/bench_fig09_siggen.cpp.o.d"
  "bench_fig09_siggen"
  "bench_fig09_siggen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_siggen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
