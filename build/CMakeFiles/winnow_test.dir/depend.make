# Empty dependencies file for winnow_test.
# This may be replaced when dependencies are built.
