file(REMOVE_RECURSE
  "CMakeFiles/winnow_test.dir/tests/winnow_test.cpp.o"
  "CMakeFiles/winnow_test.dir/tests/winnow_test.cpp.o.d"
  "winnow_test"
  "winnow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winnow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
