# Empty dependencies file for bench_fig11_similarity.
# This may be replaced when dependencies are built.
