file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_similarity.dir/bench/bench_fig11_similarity.cpp.o"
  "CMakeFiles/bench_fig11_similarity.dir/bench/bench_fig11_similarity.cpp.o.d"
  "bench_fig11_similarity"
  "bench_fig11_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
