# Empty dependencies file for av_test.
# This may be replaced when dependencies are built.
