file(REMOVE_RECURSE
  "CMakeFiles/av_test.dir/tests/av_test.cpp.o"
  "CMakeFiles/av_test.dir/tests/av_test.cpp.o.d"
  "av_test"
  "av_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
