# Empty dependencies file for multi_fragment_test.
# This may be replaced when dependencies are built.
