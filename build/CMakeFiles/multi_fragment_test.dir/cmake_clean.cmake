file(REMOVE_RECURSE
  "CMakeFiles/multi_fragment_test.dir/tests/multi_fragment_test.cpp.o"
  "CMakeFiles/multi_fragment_test.dir/tests/multi_fragment_test.cpp.o.d"
  "multi_fragment_test"
  "multi_fragment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_fragment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
