# Empty dependencies file for bench_fig08_tokenizer.
# This may be replaced when dependencies are built.
