file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_tokenizer.dir/bench/bench_fig08_tokenizer.cpp.o"
  "CMakeFiles/bench_fig08_tokenizer.dir/bench/bench_fig08_tokenizer.cpp.o.d"
  "bench_fig08_tokenizer"
  "bench_fig08_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
