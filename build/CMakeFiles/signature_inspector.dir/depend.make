# Empty dependencies file for signature_inspector.
# This may be replaced when dependencies are built.
