file(REMOVE_RECURSE
  "CMakeFiles/signature_inspector.dir/examples/signature_inspector.cpp.o"
  "CMakeFiles/signature_inspector.dir/examples/signature_inspector.cpp.o.d"
  "signature_inspector"
  "signature_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
