file(REMOVE_RECURSE
  "CMakeFiles/match_oracle_test.dir/tests/match_oracle_test.cpp.o"
  "CMakeFiles/match_oracle_test.dir/tests/match_oracle_test.cpp.o.d"
  "match_oracle_test"
  "match_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
