# Empty dependencies file for match_oracle_test.
# This may be replaced when dependencies are built.
