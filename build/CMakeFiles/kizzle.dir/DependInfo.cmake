
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/av/analyst.cpp" "CMakeFiles/kizzle.dir/src/av/analyst.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/av/analyst.cpp.o.d"
  "/root/repo/src/av/av_engine.cpp" "CMakeFiles/kizzle.dir/src/av/av_engine.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/av/av_engine.cpp.o.d"
  "/root/repo/src/cluster/dbscan.cpp" "CMakeFiles/kizzle.dir/src/cluster/dbscan.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/cluster/dbscan.cpp.o.d"
  "/root/repo/src/cluster/partitioned.cpp" "CMakeFiles/kizzle.dir/src/cluster/partitioned.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/cluster/partitioned.cpp.o.d"
  "/root/repo/src/core/corpus.cpp" "CMakeFiles/kizzle.dir/src/core/corpus.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/core/corpus.cpp.o.d"
  "/root/repo/src/core/deploy.cpp" "CMakeFiles/kizzle.dir/src/core/deploy.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/core/deploy.cpp.o.d"
  "/root/repo/src/core/hidden.cpp" "CMakeFiles/kizzle.dir/src/core/hidden.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/core/hidden.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/kizzle.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/core/sigdb.cpp" "CMakeFiles/kizzle.dir/src/core/sigdb.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/core/sigdb.cpp.o.d"
  "/root/repo/src/distance/edit_distance.cpp" "CMakeFiles/kizzle.dir/src/distance/edit_distance.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/distance/edit_distance.cpp.o.d"
  "/root/repo/src/eval/experiment.cpp" "CMakeFiles/kizzle.dir/src/eval/experiment.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/eval/experiment.cpp.o.d"
  "/root/repo/src/kitgen/benign.cpp" "CMakeFiles/kizzle.dir/src/kitgen/benign.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/kitgen/benign.cpp.o.d"
  "/root/repo/src/kitgen/families.cpp" "CMakeFiles/kizzle.dir/src/kitgen/families.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/kitgen/families.cpp.o.d"
  "/root/repo/src/kitgen/kit.cpp" "CMakeFiles/kizzle.dir/src/kitgen/kit.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/kitgen/kit.cpp.o.d"
  "/root/repo/src/kitgen/packers.cpp" "CMakeFiles/kizzle.dir/src/kitgen/packers.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/kitgen/packers.cpp.o.d"
  "/root/repo/src/kitgen/payload.cpp" "CMakeFiles/kizzle.dir/src/kitgen/payload.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/kitgen/payload.cpp.o.d"
  "/root/repo/src/kitgen/stream.cpp" "CMakeFiles/kizzle.dir/src/kitgen/stream.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/kitgen/stream.cpp.o.d"
  "/root/repo/src/kitgen/timeline.cpp" "CMakeFiles/kizzle.dir/src/kitgen/timeline.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/kitgen/timeline.cpp.o.d"
  "/root/repo/src/match/pattern.cpp" "CMakeFiles/kizzle.dir/src/match/pattern.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/match/pattern.cpp.o.d"
  "/root/repo/src/match/prefilter.cpp" "CMakeFiles/kizzle.dir/src/match/prefilter.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/match/prefilter.cpp.o.d"
  "/root/repo/src/match/scanner.cpp" "CMakeFiles/kizzle.dir/src/match/scanner.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/match/scanner.cpp.o.d"
  "/root/repo/src/match/vm.cpp" "CMakeFiles/kizzle.dir/src/match/vm.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/match/vm.cpp.o.d"
  "/root/repo/src/sig/common_window.cpp" "CMakeFiles/kizzle.dir/src/sig/common_window.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/sig/common_window.cpp.o.d"
  "/root/repo/src/sig/compiler.cpp" "CMakeFiles/kizzle.dir/src/sig/compiler.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/sig/compiler.cpp.o.d"
  "/root/repo/src/sig/multi_fragment.cpp" "CMakeFiles/kizzle.dir/src/sig/multi_fragment.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/sig/multi_fragment.cpp.o.d"
  "/root/repo/src/sig/synthesis.cpp" "CMakeFiles/kizzle.dir/src/sig/synthesis.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/sig/synthesis.cpp.o.d"
  "/root/repo/src/support/hash.cpp" "CMakeFiles/kizzle.dir/src/support/hash.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/support/hash.cpp.o.d"
  "/root/repo/src/support/interner.cpp" "CMakeFiles/kizzle.dir/src/support/interner.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/support/interner.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "CMakeFiles/kizzle.dir/src/support/rng.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/support/rng.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "CMakeFiles/kizzle.dir/src/support/strings.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/support/strings.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/kizzle.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/support/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "CMakeFiles/kizzle.dir/src/support/thread_pool.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/support/thread_pool.cpp.o.d"
  "/root/repo/src/text/abstraction.cpp" "CMakeFiles/kizzle.dir/src/text/abstraction.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/text/abstraction.cpp.o.d"
  "/root/repo/src/text/html.cpp" "CMakeFiles/kizzle.dir/src/text/html.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/text/html.cpp.o.d"
  "/root/repo/src/text/lexer.cpp" "CMakeFiles/kizzle.dir/src/text/lexer.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/text/lexer.cpp.o.d"
  "/root/repo/src/text/normalize.cpp" "CMakeFiles/kizzle.dir/src/text/normalize.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/text/normalize.cpp.o.d"
  "/root/repo/src/unpack/token_util.cpp" "CMakeFiles/kizzle.dir/src/unpack/token_util.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/unpack/token_util.cpp.o.d"
  "/root/repo/src/unpack/unpackers.cpp" "CMakeFiles/kizzle.dir/src/unpack/unpackers.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/unpack/unpackers.cpp.o.d"
  "/root/repo/src/winnow/winnow.cpp" "CMakeFiles/kizzle.dir/src/winnow/winnow.cpp.o" "gcc" "CMakeFiles/kizzle.dir/src/winnow/winnow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
