file(REMOVE_RECURSE
  "libkizzle.a"
)
