# Empty dependencies file for kizzle.
# This may be replaced when dependencies are built.
