file(REMOVE_RECURSE
  "CMakeFiles/sigdb_test.dir/tests/sigdb_test.cpp.o"
  "CMakeFiles/sigdb_test.dir/tests/sigdb_test.cpp.o.d"
  "sigdb_test"
  "sigdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
