# Empty dependencies file for sigdb_test.
# This may be replaced when dependencies are built.
