// Fuzz target: analyze::analyze_artifact over arbitrary bytes.
//
// Contract under test: the linter fed any byte string either returns a
// Report (possibly full of findings) or throws a kizzle::Error subclass
// from the bundle loader — never UB, never another exception type, and
// crucially never an unbounded analysis: the program walks and the
// recompile-and-compare verification must terminate on every database a
// parsable bundle can embed.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "analyze/analyze.h"
#include "support/errors.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const kizzle::analyze::Report report =
        kizzle::analyze::analyze_artifact(is);
    (void)report;
  } catch (const kizzle::Error&) {
    // Typed rejection is the expected outcome for malformed bundles.
  }
  return 0;
}
