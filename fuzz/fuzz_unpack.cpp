// Fuzz target: the unpacker fixpoint over arbitrary bytes.
//
// unpack_fixpoint runs kit-specific static decoders on attacker-crafted
// input by definition. It must be total (an implausible or inconsistent
// stream yields nullopt, never a throw) and bounded (layer cap, total
// decoded-byte budget, cycle detection — unpack::UnpackLimits). Tight
// limits here keep iterations fast; the bound-enforcement paths are what
// this target exercises.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "unpack/unpackers.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  kizzle::unpack::UnpackLimits limits;
  limits.max_layers = 4;
  limits.max_total_bytes = std::size_t{1} << 20;  // 1 MiB across layers
  const auto result = kizzle::unpack::unpack_fixpoint(
      input, limits, kizzle::unpack::default_unpackers());
  if (result && limits.max_total_bytes != 0 &&
      result->text.size() > limits.max_total_bytes) {
    std::abort();  // the budget failed to bound the decode
  }
  return 0;
}
