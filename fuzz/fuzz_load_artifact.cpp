// Fuzz target: core::load_artifact over arbitrary bytes.
//
// Contract under test (support/errors.h): a `.kpf` bundle loader fed any
// byte string either returns a valid artifact or throws a kizzle::Error
// subclass — never UB, never unbounded allocation, never another
// exception type. Anything else escaping here is a finding.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/sigdb.h"
#include "support/errors.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const kizzle::core::BundleArtifact artifact =
        kizzle::core::load_artifact(is);
    (void)artifact;
  } catch (const kizzle::Error&) {
    // Typed rejection is the expected outcome for malformed bytes.
  }
  return 0;
}
