// Replay driver for toolchains without libFuzzer (GCC has no
// -fsanitize=fuzzer). Linked into each fuzz target instead of the
// libFuzzer runtime, it provides the main() that feeds
// LLVMFuzzerTestOneInput:
//
//   1. every corpus file passed on the command line (directories are
//      walked non-recursively), byte-for-byte, and
//   2. a deterministic mutation sweep over each seed — truncations at
//      quartile points and single-bit flips at up to kMaxFlips evenly
//      spaced offsets — so the typed-rejection contract is exercised on
//      thousands of near-valid inputs even without coverage feedback, and
//   3. when the target defines LLVMFuzzerCustomMutator (weak symbol —
//      the structure-aware, checksum-resealing mutators do), a sweep of
//      kCustomRounds seeded mutation chains per corpus file, so the
//      mutants that penetrate past checksum gates run here too.
//
// Exit code 0 means every input was processed; contract violations abort
// (or trip a sanitizer), exactly as they would under libFuzzer.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed)
    __attribute__((weak));

namespace {

constexpr std::size_t kMaxFlips = 512;

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void run(const std::vector<std::uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

std::size_t sweep(const std::vector<std::uint8_t>& seed) {
  std::size_t executions = 1;
  run(seed);
  for (int quarter = 1; quarter < 4; ++quarter) {
    std::vector<std::uint8_t> cut(
        seed.begin(), seed.begin() + seed.size() * quarter / 4);
    run(cut);
    ++executions;
  }
  const std::size_t stride =
      seed.empty() ? 1 : std::max<std::size_t>(1, seed.size() / kMaxFlips);
  for (std::size_t i = 0; i < seed.size(); i += stride) {
    std::vector<std::uint8_t> flipped = seed;
    for (int bit = 0; bit < 8; ++bit) {
      flipped[i] = seed[i] ^ static_cast<std::uint8_t>(1u << bit);
      run(flipped);
      ++executions;
    }
  }
  // Structure-aware mutation chains: each round restarts from the seed
  // and applies a few stacked custom mutations, deterministically seeded.
  if (LLVMFuzzerCustomMutator != nullptr && !seed.empty()) {
    constexpr unsigned kCustomRounds = 256;
    for (unsigned round = 0; round < kCustomRounds; ++round) {
      std::vector<std::uint8_t> mutant = seed;
      std::size_t size = mutant.size();
      for (unsigned depth = 0; depth <= round % 4; ++depth) {
        size = LLVMFuzzerCustomMutator(mutant.data(), size, mutant.size(),
                                       round * 4 + depth + 1);
      }
      mutant.resize(size);
      run(mutant);
      ++executions;
    }
  }
  return executions;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(arg)) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "standalone_driver: no such input: %s\n", argv[i]);
      return 2;
    }
  }
  std::size_t executions = 0;
  for (const auto& file : files) {
    executions += sweep(read_file(file));
  }
  std::printf("standalone_driver: %zu seed file(s), %zu execution(s), "
              "no contract violation\n",
              files.size(), executions);
  return 0;
}
