// Fuzz target: the version-2 binary release formats — `.kpf` bundles
// (KZBUNDLE, through BOTH load paths) and KZDELTA delta artifacts.
//
// Contract under test (support/errors.h): fed any byte string, each
// loader either returns a valid artifact or throws a kizzle::Error
// subclass — never UB, never unbounded allocation, never another
// exception type. For bundles this harness is also a differential
// oracle: the istream copy-in loader and the zero-copy std::span loader
// must agree on accept/reject and on the loaded signature count, or the
// two deployment paths could serve different databases from one file.
//
// The custom mutator below is what buys coverage PAST the checksum
// gates: random byte flips die at the whole-payload checksum with
// probability ~1, so it parses the real header fields, mutates inside
// the payload (lengths, section directory, table bytes, lineage
// fingerprints) and then re-seals the checksum with the production
// kizzle::checksum_update. It is self-contained (xorshift, no
// LLVMFuzzerMutate) so it links under both libFuzzer and the GCC
// standalone driver, which invokes it through a weak symbol.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <sstream>
#include <string>
#include <string_view>

#include "core/sigdb.h"
#include "support/errors.h"
#include "support/hash.h"

namespace {

bool has_magic(const std::uint8_t* data, std::size_t size,
               std::string_view magic) {
  return size >= 8 && std::memcmp(data, magic.data(), 8) == 0;
}

std::uint64_t u64_at(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof v);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  if (has_magic(data, size, kizzle::core::kDeltaMagic)) {
    std::istringstream is(bytes);
    try {
      const kizzle::core::DeltaArtifact delta = kizzle::core::load_delta(is);
      (void)delta;
    } catch (const kizzle::Error&) {
      // Typed rejection is the expected outcome for malformed bytes.
    }
    return 0;
  }

  // Everything else goes through both bundle loaders; they must agree.
  bool stream_ok = false, span_ok = false;
  std::size_t stream_sigs = 0, span_sigs = 0;
  try {
    std::istringstream is(bytes);
    stream_sigs = kizzle::core::load_artifact(is).signatures.size();
    stream_ok = true;
  } catch (const kizzle::Error&) {
  }
  try {
    span_sigs =
        kizzle::core::load_artifact(
            std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(data), size))
            .signatures.size();
    span_ok = true;
  } catch (const kizzle::Error&) {
  }
  if (stream_ok != span_ok || (stream_ok && stream_sigs != span_sigs)) {
    __builtin_trap();  // the two load paths diverged on one input
  }
  return 0;
}

// ----------------------- structure-aware mutator -----------------------

namespace {

struct XorShift {
  std::uint64_t s;
  explicit XorShift(unsigned seed) : s(seed | 1u) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::size_t below(std::size_t n) { return n ? next() % n : 0; }
};

// Values that probe boundary checks when dropped into a length field.
std::uint64_t interesting_u64(XorShift& rng) {
  static const std::uint64_t kValues[] = {
      0,          1,          7,           8,
      63,         64,         255,         4096,
      0x7FFFFFFF, 0xFFFFFFFF, 1ull << 30,  (1ull << 30) + 1,
      1ull << 40, ~0ull,      ~0ull - 7,
  };
  return kValues[rng.below(sizeof(kValues) / sizeof(kValues[0]))];
}

// Flip/overwrite a few bytes anywhere in [begin, end).
void scribble(std::uint8_t* data, std::size_t begin, std::size_t end,
              XorShift& rng) {
  if (end <= begin) return;
  const std::size_t n = 1 + rng.below(8);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t at = begin + rng.below(end - begin);
    data[at] = static_cast<std::uint8_t>(rng.next());
  }
}

// KZDELTA: ... | u64 payload_size@16 | payload@24 | u64 checksum.
// Mutate inside the payload (occasionally a whole u64 field at its
// start: base/result fingerprint, n_retired, db_len), then re-seal.
std::size_t mutate_delta(std::uint8_t* data, std::size_t size,
                         XorShift& rng) {
  const std::size_t kPayloadAt = 24;
  if (size < kPayloadAt + 8) return size;
  const std::uint64_t declared = u64_at(data + 16);
  if (declared > size - kPayloadAt - 8) return size;  // already hostile
  const std::size_t payload = static_cast<std::size_t>(declared);

  switch (rng.below(4)) {
    case 0:  // a u64 field at the head of the payload
      if (payload >= 32) {
        put_u64(data + kPayloadAt + 8 * rng.below(4), interesting_u64(rng));
      }
      break;
    case 1:  // the retired list / embedded db text
      scribble(data, kPayloadAt + 32, kPayloadAt + payload, rng);
      break;
    case 2:  // anywhere in the payload
      scribble(data, kPayloadAt, kPayloadAt + payload, rng);
      break;
    default:  // leave the checksum stale: the gate itself stays fuzzed
      scribble(data, 0, size, rng);
      return size;
  }
  std::uint64_t sum = kizzle::kChecksumBasis;
  kizzle::checksum_update(sum, data + kPayloadAt, payload);
  put_u64(data + kPayloadAt + payload, sum);
  return size;
}

// KZBUNDLE v2: u64 db_len@16 | db text@24 | pad to 64 | KZPF v2 blob.
// Inside the blob: u64 payload_size@blob+16, payload = blob[0, ps),
// u64 checksum@blob+ps. Mutate the db text (no checksum there) or the
// prefilter payload — registrations, section directory, table bytes —
// then re-seal the prefilter checksum.
std::size_t mutate_bundle(std::uint8_t* data, std::size_t size,
                          XorShift& rng) {
  const std::size_t kDbAt = 24;
  if (size < kDbAt) return size;
  const std::uint64_t db_len64 = u64_at(data + 16);
  if (db_len64 > size - kDbAt) return size;
  const std::size_t db_len = static_cast<std::size_t>(db_len64);
  const std::size_t blob_at =
      kDbAt + db_len + (64 - (kDbAt + db_len) % 64) % 64;

  if (blob_at >= size || rng.below(3) == 0) {
    // The embedded signature text: parsed line-by-line, no checksum.
    scribble(data, kDbAt, kDbAt + db_len, rng);
    return size;
  }
  const std::size_t blob_size = size - blob_at;
  std::uint8_t* blob = data + blob_at;
  if (blob_size < 24 + 8) return size;
  const std::uint64_t ps64 = u64_at(blob + 16);
  if (ps64 < 24 || ps64 > blob_size - 8) {  // already hostile
    scribble(data, blob_at, size, rng);
    return size;
  }
  const std::size_t ps = static_cast<std::size_t>(ps64);
  switch (rng.below(4)) {
    case 0:  // header counts (n_ids, id_limit, alpha_size) at blob+24
      put_u64(blob + 24 + 8 * rng.below(3), interesting_u64(rng));
      break;
    case 1:  // early payload: alphabet map + registrations
      scribble(blob, 48, std::min(ps, std::size_t{48} + 1024), rng);
      break;
    case 2:  // late payload: section directory + table bytes
      scribble(blob, ps / 2, ps, rng);
      break;
    default:  // stale checksum path
      scribble(data, 0, size, rng);
      return size;
  }
  std::uint64_t sum = kizzle::kChecksumBasis;
  kizzle::checksum_update(sum, blob, ps);
  put_u64(blob + ps, sum);
  return size;
}

}  // namespace

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  XorShift rng(seed);
  if (has_magic(data, size, kizzle::core::kDeltaMagic)) {
    return mutate_delta(data, size, rng);
  }
  if (has_magic(data, size, kizzle::core::kArtifactMagic)) {
    return mutate_bundle(data, size, rng);
  }
  // Unrecognized input: plain scribble keeps the magic dispatch fuzzed.
  if (size == 0 && max_size > 0) {
    data[0] = static_cast<std::uint8_t>(rng.next());
    return 1;
  }
  scribble(data, 0, size, rng);
  return size;
}
