// Fuzz target: match::LiteralPrefilter::load over arbitrary bytes.
//
// The serialized automaton is the single most structure-dense artifact in
// the system (goto/fail/output tables that the scan loop later indexes
// blind), so load() must reject every inconsistent table shape with a
// kizzle::Error subclass before the automaton is allowed to walk
// anything. Any other escape is a finding.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "match/prefilter.h"
#include "support/errors.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const kizzle::match::LiteralPrefilter pf =
        kizzle::match::LiteralPrefilter::load(is);
    (void)pf;
  } catch (const kizzle::Error&) {
    // Typed rejection is the expected outcome for malformed bytes.
  }
  return 0;
}
