// Fuzz target: the text normalization pipeline over arbitrary bytes.
//
// normalize_raw / normalize_js / normalize_document sit at the very front
// of every scan channel and must be total: no exception, no crash, and
// output never larger than the input (both normalizations only drop
// bytes). Nothing is caught here — any throw is a finding.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "text/normalize.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const std::string raw = kizzle::text::normalize_raw(input);
  const std::string js = kizzle::text::normalize_js(input);
  const std::string doc = kizzle::text::normalize_document(input);
  if (raw.size() > input.size() || js.size() > input.size()) {
    // Normalization only ever drops bytes; growth would be an expansion
    // primitive handed to an attacker.
    std::abort();
  }
  // Idempotence: raw normalization is a projection.
  if (kizzle::text::normalize_raw(raw) != raw) std::abort();
  (void)doc;
  return 0;
}
